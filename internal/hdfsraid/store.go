// Package hdfsraid is a miniature on-disk HDFS-RAID: it stores files
// striped by any registered code across per-node directories, survives
// killed nodes up to the code's fault tolerance, repairs them with the
// code's repair plans (moving only the planned partial parities and
// copies), and verifies block integrity with CRC-32C trailers — the
// same shape as the Facebook HDFS-RAID module the paper's prototype
// was built on, scaled to a laptop.
//
// On-disk layout:
//
//	root/manifest.json
//	root/node-03/myfile.2.7    (stripe 2, symbol 7; block bytes + CRC)
package hdfsraid

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/core"
)

// Manifest records the store's configuration and file table, plus the
// transcode journal: one intent record per in-flight transcode (at
// most one per file), each persisted before any destructive swap step
// so crash recovery is exact (see TranscodeIntent).
type Manifest struct {
	CodeName  string              `json:"code"`
	BlockSize int                 `json:"block_size"`
	Files     map[string]FileInfo `json:"files"`
	// ExtentBlocks is the ingest extent size in data blocks: Put
	// splits files into runs of this many blocks, each striped and
	// tiered independently. 0 stores every file as a single extent
	// (the pre-extent behavior).
	ExtentBlocks int `json:"extent_blocks,omitempty"`
	// Journal is the pre-queue single-entry journal field; Recover
	// migrates it into Queue so manifests written by older versions
	// recover identically. Never written anymore.
	Journal *TranscodeIntent   `json:"transcode_intent,omitempty"`
	Queue   []*TranscodeIntent `json:"transcode_queue,omitempty"`
}

// FileInfo records one stored file: its length plus the extent map
// that carries the real layout. Stripes and Code are summary fields
// (total stripes across extents; the single extent's code) kept for
// pre-extent readers — manifests written before the extent map carry
// only them, and Open migrates such entries to a single extent.
type FileInfo struct {
	Length  int `json:"length"`
	Stripes int `json:"stripes"`
	// Code is the file's coding scheme when it differs from the store
	// default and the file is a single extent. Empty means the store
	// code (or a mixed multi-extent file; see Extents).
	Code string `json:"tier_code,omitempty"`
	// Extents is the file's layout: consecutive data-block runs, each
	// with its own code and stripe set. Never empty after Open.
	Extents []Extent `json:"extents,omitempty"`
	// ExtentPaths records the block naming style: true means blocks
	// are extent-qualified (name.x<ext>.<stripe>.<symbol>), false the
	// legacy flat form. Fixed at ingest.
	ExtentPaths bool `json:"extent_paths,omitempty"`
}

// Store is an open on-disk cluster. Reads may run concurrently with
// each other and with Transcode: mu guards the manifest's file table,
// codecMu the per-code codec cache.
type Store struct {
	root    string
	code    core.Code
	striper *core.Striper

	// bio is the block-file I/O seam: every block read, write, rename
	// and removal goes through it, so fault injection (internal/
	// faultfs) and future remote backends slot in under the detection
	// and healing machinery. Default passthrough; see SetBlockIO.
	bio BlockIO

	// codeName, blockSize and extentBlocks mirror the manifest's
	// immutable configuration fields. Lock-free paths (streaming
	// ingest and transcode workers) read these, never the manifest —
	// reloadManifest reassigns the whole manifest struct under mu,
	// which unlocked readers of its fields would race with.
	codeName     string
	blockSize    int
	extentBlocks int

	// framePool recycles on-disk block frames (payload + CRC trailer)
	// across reads and writes; payloadPool recycles bare block-size
	// buffers for degraded-read payloads and encode pipelines. Both
	// keep steady-state block traffic allocation-free.
	framePool   *core.BlockPool
	payloadPool *core.BlockPool

	mu       sync.RWMutex
	manifest Manifest

	codecMu sync.Mutex
	codecs  map[string]codec // per-code cache for tiered files

	// opMu gates the move path against the journal recovery pass:
	// transcodes hold the read side (any number of moves of distinct
	// files run concurrently), Recover the write side (it replays
	// journal entries and must see the move path quiescent).
	opMu sync.RWMutex

	// lockFile makes one process at a time the store's mover:
	// transcodes flock it exclusively (refcounted — the flock is per
	// open file description, so moves of distinct files still run
	// concurrently inside this process) and the manifest is re-read
	// when the flock is first taken, so a move never commits a
	// snapshot predating another process's commits. Recover tries the
	// same exclusive lock without blocking: a refusal proves a live
	// mover, so its journal entries and staged blocks are not crash
	// residue. The fd lives as long as the store; a crashed process's
	// flock is released by the kernel.
	lockFile  *os.File
	flockMu   sync.Mutex
	flockRefs int

	// moveMu guards moveLocks, the per-file transcode locks that
	// replaced the old store-wide transcode mutex: moves of distinct
	// files proceed in parallel, while two moves of one file serialize
	// (staged .tc block names are derived from the target layout, so
	// they would share staging paths).
	moveMu    sync.Mutex
	moveLocks map[string]*fileLock

	// encodeWorkers counts the encode workers reserved by moves
	// currently in their streaming phase. Each move reserves what is
	// left of the GOMAXPROCS budget (always at least one worker), so
	// N concurrent moves hold at most GOMAXPROCS+N-1 workers — and
	// that many stripes' pooled buffers — instead of N full pools.
	encodeWorkers atomic.Int64

	// OnRead, when non-nil, is invoked with the file name on every
	// Get and ReadBlock access. The tier subsystem hooks it to feed
	// heat tracking; it must be cheap and non-blocking. Set it before
	// serving concurrent reads.
	OnRead func(name string)

	// OnReadExtent, when non-nil, observes accesses at extent
	// granularity: Get invokes it once per extent of the file (a whole
	// -file read touches every extent), ReadBlock with the extent
	// holding the block. The tier subsystem hooks it to feed per-
	// extent heat. Same contract as OnRead.
	OnReadExtent func(name string, ext int)

	// Heat, when non-nil, reports a file's current access heat. Repair
	// consults it to rebuild hot files before cold ones, extending the
	// tier layer's hottest-first move ordering into the repair path.
	// It must be safe for concurrent use; set it before Repair.
	Heat func(name string) float64

	// obs holds the store's always-on metrics: read/ingest latency
	// histograms, degraded-read and byte counters, transcode stage
	// timings and the journal event trace (see internal/obs and
	// docs/OBSERVABILITY.md). Nil disables instrumentation; the
	// overhead benchmark gate uses that to price it.
	obs *storeObs

	// tuned holds the store's calibrated worker-pool sizing loaded
	// from tune.json (see internal/tune). A nil inner pointer means
	// uncalibrated: every pool falls back to GOMAXPROCS.
	tuned tunedParams

	// healSeq numbers quarantine captures and heal write-back temp
	// files, so concurrent heals of one block never collide on paths.
	healSeq atomic.Int64

	// scrubMu serializes scrub passes; scrubPos is the cursor the
	// trickle scrubber resumes from between budgeted calls.
	scrubMu  sync.Mutex
	scrubPos scrubCursor

	// killHook simulates a crash at named points for kill-point tests;
	// nil in production. See (*Store).kill.
	killHook func(point string) error

	// recovery is the report of the recovery pass Open ran.
	recovery RecoverReport
}

// codec bundles a code with its striper for one block size.
type codec struct {
	code    core.Code
	striper *core.Striper
}

// fileLock is one entry in the per-file transcode lock table.
type fileLock struct {
	mu   sync.Mutex
	refs int
}

// lockMove acquires the named file's move lock, creating it on demand.
// Moves of distinct files never contend here.
func (s *Store) lockMove(name string) {
	s.moveMu.Lock()
	l := s.moveLocks[name]
	if l == nil {
		l = &fileLock{}
		s.moveLocks[name] = l
	}
	l.refs++
	s.moveMu.Unlock()
	l.mu.Lock()
}

// unlockMove releases the named file's move lock, dropping the table
// entry once the last holder or waiter is gone.
func (s *Store) unlockMove(name string) {
	s.moveMu.Lock()
	l := s.moveLocks[name]
	l.mu.Unlock()
	if l.refs--; l.refs == 0 {
		delete(s.moveLocks, name)
	}
	s.moveMu.Unlock()
}

// lockStoreForMove marks this process the store's single mover: the
// first in-process move takes the exclusive flock (waiting out any
// other process's moves) and re-reads the manifest so this process
// never commits a snapshot predating another process's commits;
// further in-process moves just join the refcount and proceed
// concurrently. Callers hold opMu's read side and no other store
// locks.
func (s *Store) lockStoreForMove() error {
	s.flockMu.Lock()
	defer s.flockMu.Unlock()
	if s.flockRefs == 0 && s.lockFile != nil {
		if err := flockLock(s.lockFile, true); err != nil {
			return fmt.Errorf("hdfsraid: locking store for move: %w", err)
		}
		s.mu.Lock()
		err := s.reloadManifest()
		s.mu.Unlock()
		if err != nil {
			flockUnlock(s.lockFile)
			return err
		}
	}
	s.flockRefs++
	return nil
}

// unlockStoreForMove releases one move's hold, dropping the flock
// when the last in-process move finishes.
func (s *Store) unlockStoreForMove() {
	s.flockMu.Lock()
	defer s.flockMu.Unlock()
	if s.flockRefs--; s.flockRefs == 0 && s.lockFile != nil {
		flockUnlock(s.lockFile)
	}
}

// tryLockExclusive attempts the recovery flock without blocking. A
// false return means another live process holds the store (a move in
// flight) — which also means there is no crash residue to recover, so
// callers skip recovery rather than stall every Open behind a slow
// paced move. Callers hold opMu's write side, so no shared hold
// exists in this process.
func (s *Store) tryLockExclusive() (bool, error) {
	if s.lockFile == nil {
		return true, nil
	}
	ok, err := flockTry(s.lockFile)
	if err != nil {
		return false, fmt.Errorf("hdfsraid: locking store for recovery: %w", err)
	}
	return ok, nil
}

// unlockExclusive releases the recovery flock.
func (s *Store) unlockExclusive() {
	if s.lockFile != nil {
		flockUnlock(s.lockFile)
	}
}

const manifestName = "manifest.json"

// lockName is the advisory cross-process lock file beside the
// manifest (see Store.lockFile).
const lockName = ".store.lock"

// openLockFile opens (creating if needed) the store's advisory lock
// file. Failure is fatal to Create/Open: without the lock a recovery
// pass could sweep another live process's staged blocks — the exact
// corruption the flock exists to prevent.
func openLockFile(root string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(root, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("hdfsraid: opening store lock: %w", err)
	}
	return f, nil
}

// Create initializes a new store at root for the named code, storing
// every file as a single extent. See CreateExt for extent-granular
// tiering.
func Create(root, codeName string, blockSize int) (*Store, error) {
	return CreateExt(root, codeName, blockSize, 0)
}

// CreateExt initializes a new store whose Puts split files into
// extents of extentBlocks data blocks, each striped — and later tiered
// — independently, so a hot region of a large file can move to a
// replicated code while the rest stays on RS. extentBlocks <= 0
// stores whole files as single extents. Extent sizes that are a
// multiple of the codes' data-symbol counts avoid per-extent stripe
// padding.
func CreateExt(root, codeName string, blockSize, extentBlocks int) (*Store, error) {
	c, err := core.New(codeName)
	if err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(root, manifestName)); err == nil {
		return nil, fmt.Errorf("hdfsraid: store already exists at %s", root)
	}
	st, err := core.NewStriper(c, blockSize)
	if err != nil {
		return nil, err
	}
	if extentBlocks < 0 {
		extentBlocks = 0
	}
	s := &Store{
		root: root, code: c, striper: st, bio: osBlockIO{},
		codeName: codeName, blockSize: blockSize, extentBlocks: extentBlocks,
		framePool:   core.NewBlockPool(blockSize + 4),
		payloadPool: core.NewBlockPool(blockSize),
		manifest: Manifest{CodeName: codeName, BlockSize: blockSize,
			ExtentBlocks: extentBlocks, Files: map[string]FileInfo{}},
		codecs:    map[string]codec{codeName: {c, st}},
		moveLocks: map[string]*fileLock{},
		obs:       newStoreObs(),
	}
	if err := s.ensureNodeDirs(c.Nodes()); err != nil {
		return nil, err
	}
	if s.lockFile, err = openLockFile(root); err != nil {
		return nil, err
	}
	if err := s.saveManifest(); err != nil {
		return nil, err
	}
	s.loadTune()
	return s, nil
}

// Open loads an existing store.
func Open(root string) (*Store, error) {
	raw, err := os.ReadFile(filepath.Join(root, manifestName))
	if err != nil {
		return nil, fmt.Errorf("hdfsraid: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("hdfsraid: corrupt manifest: %w", err)
	}
	c, err := core.New(m.CodeName)
	if err != nil {
		return nil, err
	}
	st, err := core.NewStriper(c, m.BlockSize)
	if err != nil {
		return nil, err
	}
	if m.Files == nil {
		m.Files = map[string]FileInfo{}
	}
	s := &Store{root: root, code: c, striper: st, manifest: m, bio: osBlockIO{},
		codeName: m.CodeName, blockSize: m.BlockSize, extentBlocks: m.ExtentBlocks,
		framePool:   core.NewBlockPool(m.BlockSize + 4),
		payloadPool: core.NewBlockPool(m.BlockSize),
		codecs:      map[string]codec{m.CodeName: {c, st}},
		moveLocks:   map[string]*fileLock{},
		obs:         newStoreObs()}
	if s.lockFile, err = openLockFile(root); err != nil {
		return nil, err
	}
	// Migrate legacy per-file entries to single-extent files, then
	// fail fast if any extent references an unregistered tier code or
	// an inconsistent layout.
	s.normalizeManifestLocked()
	for name, fi := range s.manifest.Files {
		if err := s.validateExtents(name, fi); err != nil {
			return nil, err
		}
	}
	// Replay or roll back any transcode the last process left mid-
	// flight, and sweep orphan staged blocks, before serving reads.
	rec, err := s.Recover()
	if err != nil {
		return nil, fmt.Errorf("hdfsraid: recovering journal: %w", err)
	}
	s.recovery = rec
	s.loadTune()
	return s, nil
}

// Code returns the store's default coding scheme (files may be tiered
// onto other codes; see FileCode).
func (s *Store) Code() core.Code { return s.code }

// FileCode returns the effective code name of a stored file: the
// shared code when every extent agrees, "mixed" for a file whose
// extents sit on different tiers.
func (s *Store) FileCode(name string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fi, ok := s.manifest.Files[name]
	if !ok {
		return "", false
	}
	return s.fileCodeLocked(fi), true
}

// MixedCode is the FileCode result for a file whose extents sit on
// more than one code.
const MixedCode = "mixed"

func (s *Store) fileCodeLocked(fi FileInfo) string {
	resolve := func(c string) string {
		if c == "" {
			return s.codeName
		}
		return c
	}
	code := resolve(fi.Extents[0].Code)
	for _, e := range fi.Extents[1:] {
		if resolve(e.Code) != code {
			return MixedCode
		}
	}
	return code
}

// codecByName resolves a code name ("" = store default) to its cached
// codec. (CodeName and BlockSize are immutable after open, so only the
// codec cache needs guarding.)
func (s *Store) codecByName(name string) (codec, error) {
	if name == "" {
		name = s.codeName
	}
	s.codecMu.Lock()
	defer s.codecMu.Unlock()
	if cc, ok := s.codecs[name]; ok {
		return cc, nil
	}
	c, err := core.New(name)
	if err != nil {
		return codec{}, err
	}
	st, err := core.NewStriper(c, s.blockSize)
	if err != nil {
		return codec{}, err
	}
	cc := codec{c, st}
	s.codecs[name] = cc
	return cc, nil
}

// extentCodecs resolves the codec of every extent of a file.
func (s *Store) extentCodecs(fi FileInfo) ([]codec, error) {
	ccs := make([]codec, len(fi.Extents))
	for i, e := range fi.Extents {
		cc, err := s.codecByName(e.Code)
		if err != nil {
			return nil, err
		}
		ccs[i] = cc
	}
	return ccs, nil
}

// Nodes returns the number of node directories the store spans: the
// default code's length, or more when tiered extents use longer codes.
func (s *Store) Nodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.code.Nodes()
	for _, fi := range s.manifest.Files {
		for _, e := range fi.Extents {
			if cc, err := s.codecByName(e.Code); err == nil && cc.code.Nodes() > n {
				n = cc.code.Nodes()
			}
		}
	}
	return n
}

// ensureNodeDirs creates node directories 0..n-1 as needed.
func (s *Store) ensureNodeDirs(n int) error {
	for v := 0; v < n; v++ {
		if err := os.MkdirAll(s.nodeDir(v), 0o755); err != nil {
			return err
		}
	}
	return nil
}

// Files lists stored file names in sorted order.
func (s *Store) Files() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.filesLocked()
}

func (s *Store) filesLocked() []string {
	names := make([]string, 0, len(s.manifest.Files))
	for n := range s.manifest.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Info returns metadata for a stored file.
func (s *Store) Info(name string) (FileInfo, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fi, ok := s.manifest.Files[name]
	return fi, ok
}

func (s *Store) nodeDir(v int) string {
	return filepath.Join(s.root, fmt.Sprintf("node-%02d", v))
}

func (s *Store) blockPath(v int, name string, stripe, symbol int) string {
	return filepath.Join(s.nodeDir(v), fmt.Sprintf("%s.%d.%d", name, stripe, symbol))
}

// reloadManifest re-reads the manifest from disk. Recovery calls it
// after winning the cross-process lock, so its decisions rest on the
// authoritative on-disk state — another process may have committed
// moves between this handle's Open-time snapshot and the lock grant.
// Caller holds mu.
func (s *Store) reloadManifest() error {
	raw, err := os.ReadFile(filepath.Join(s.root, manifestName))
	if err != nil {
		return fmt.Errorf("hdfsraid: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("hdfsraid: corrupt manifest: %w", err)
	}
	if m.Files == nil {
		m.Files = map[string]FileInfo{}
	}
	s.manifest = m
	s.normalizeManifestLocked()
	return nil
}

// saveManifest persists the manifest atomically: write a temp file,
// fsync it, and rename over the old manifest. A crash at any point
// leaves either the old or the new manifest intact, never a torn
// half-write — the property the transcode journal's recovery depends
// on. Callers hold mu (or have exclusive access during Create).
func (s *Store) saveManifest() error {
	raw, err := json.MarshalIndent(s.manifest, "", "  ")
	if err != nil {
		return err
	}
	final := filepath.Join(s.root, manifestName)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	// The rename itself must be durable before callers take
	// destructive steps that depend on the journal record: fsync the
	// directory entry, or a power loss could surface the old manifest
	// alongside a half-swapped file.
	dir, err := os.Open(s.root)
	if err != nil {
		return err
	}
	syncErr := dir.Sync()
	if closeErr := dir.Close(); syncErr == nil {
		syncErr = closeErr
	}
	return syncErr
}

// writeBlock writes block bytes with a CRC-32C trailer through the
// BlockIO seam, assembling the on-disk frame in a pooled buffer
// instead of allocating one per block.
func (s *Store) writeBlock(path string, data []byte) error {
	if len(data) != s.blockSize {
		return fmt.Errorf("hdfsraid: writeBlock got %d bytes, want %d", len(data), s.blockSize)
	}
	frame := s.framePool.Get()
	defer s.framePool.Put(frame)
	copy(frame, data)
	binary.LittleEndian.PutUint32(frame[len(data):], block.Checksum(data))
	return s.bio.WriteFile(path, frame, 0o644)
}

// ErrCorrupt reports a checksum mismatch.
var ErrCorrupt = errors.New("hdfsraid: block checksum mismatch")

// ErrNotFound reports a lookup of a file the manifest does not hold.
// Callers building remote APIs (internal/serve) map it to a 404; match
// it with errors.Is.
var ErrNotFound = errors.New("no such file")

// ErrExists reports an ingest of a name the manifest already holds.
// The serving front door maps it to a 409 conflict; match it with
// errors.Is.
var ErrExists = errors.New("already stored")

// readBlockFrame reads and verifies one block file into frame through
// bio; frame must be blockSize+4 bytes (typically from the store's
// frame pool). The returned payload aliases frame[:blockSize]. Most
// callers want (*Store).readBlockInto, which adds transient-error
// retry on top.
func readBlockFrame(bio BlockIO, path string, frame []byte) ([]byte, error) {
	f, err := bio.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := io.ReadFull(f, frame); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: %s shorter than %d bytes", ErrCorrupt, path, len(frame))
		}
		return nil, err
	}
	var extra [1]byte
	if n, _ := f.Read(extra[:]); n != 0 {
		return nil, fmt.Errorf("%w: %s longer than %d bytes", ErrCorrupt, path, len(frame))
	}
	blockSize := len(frame) - 4
	data := frame[:blockSize]
	if binary.LittleEndian.Uint32(frame[blockSize:]) != block.Checksum(data) {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, path)
	}
	return data, nil
}

// writeExtentBlocks encodes one extent's data under cc and writes
// every symbol replica of every stripe to its placement node,
// appending suffix to each block path. data is the extent's bytes (the
// tail block may be partial; padding blocks are zero-filled from the
// pool). Encoding and disk writes run through the striper's streaming
// pipeline: a bounded worker pool encodes one stripe from pooled
// buffers while others are being written, and every buffer is recycled
// the moment its blocks are on disk. It returns the paths written
// (without suffix), including those written before a failure, so
// callers can clean up staged blocks.
func (s *Store) writeExtentBlocks(name string, fi FileInfo, ext int, cc codec, data []byte, suffix string) ([]string, error) {
	p := cc.code.Placement()
	var mu sync.Mutex
	var written []string
	err := cc.striper.EncodeStream(data, 0, s.payloadPool, func(stripe core.EncodedStripe) error {
		for sym, buf := range stripe.Symbols {
			for _, v := range p.SymbolNodes[sym] {
				path := s.extentBlockPath(v, name, fi, ext, stripe.Index, sym)
				if err := s.writeBlock(path+suffix, buf); err != nil {
					return err
				}
				mu.Lock()
				written = append(written, path)
				mu.Unlock()
			}
		}
		return nil
	})
	return written, err
}

// checkNewFile validates a Put/PutReader target name. Caller holds mu.
func (s *Store) checkNewFile(name string) error {
	if name == "" || filepath.Base(name) != name {
		return fmt.Errorf("hdfsraid: invalid file name %q", name)
	}
	if _, dup := s.manifest.Files[name]; dup {
		return fmt.Errorf("hdfsraid: file %q %w", name, ErrExists)
	}
	return nil
}

// Put stripes, encodes and stores a file, writing every symbol replica
// to its placement node. With extents enabled (CreateExt), the file is
// split into extent-sized runs, each striped independently so it can
// later change tier on its own.
func (s *Store) Put(name string, data []byte) (err error) {
	if s.obs != nil {
		start := time.Now()
		defer func() {
			s.obs.putNs.Observe(time.Since(start).Nanoseconds())
			if err == nil {
				s.obs.bytesIn.Add(int64(len(data)))
			}
		}()
	}
	// The ingest lock serializes this Put against a concurrent
	// PutReader of the same name, whose block writes happen outside
	// the manifest lock.
	s.lockMove(ingestKey(name))
	defer s.unlockMove(ingestKey(name))
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkNewFile(name); err != nil {
		return err
	}
	fi := FileInfo{
		Length:      len(data),
		Extents:     s.buildExtents(len(data)),
		ExtentPaths: s.extentBlocks > 0,
	}
	refreshSummary(&fi)
	bs := s.blockSize
	cc := codec{s.code, s.striper}
	for i, e := range fi.Extents {
		lo := e.Start * bs
		hi := (e.Start + e.Blocks) * bs
		if hi > len(data) {
			hi = len(data)
		}
		if _, err := s.writeExtentBlocks(name, fi, i, cc, data[lo:hi], ""); err != nil {
			return err
		}
	}
	s.manifest.Files[name] = fi
	return s.saveManifest()
}

// Get reads a file back, decoding around missing or corrupt blocks as
// long as each stripe remains within the code's erasure tolerance.
func (s *Store) Get(name string) ([]byte, error) {
	return s.get(name, false)
}

// get is Get with an internal flag: maintenance reads (transcodes)
// skip the heat hook so tiering moves don't count as accesses. The
// read lock spans the whole read, so a concurrent transcode's block
// swap can never be observed half-done.
//
// Stripes are independent, so they are loaded and decoded by a worker
// pool, each worker reading block frames into pooled buffers that are
// recycled as soon as the stripe's bytes are copied into the result —
// the only steady-state allocation is the returned file buffer.
func (s *Store) get(name string, internal bool) ([]byte, error) {
	// degraded flips when any stripe decodes around a missing symbol;
	// it picks which latency histogram the read lands in.
	var start time.Time
	var degraded atomic.Bool
	if s.obs != nil {
		start = time.Now()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	fi, ok := s.manifest.Files[name]
	if !ok {
		return nil, fmt.Errorf("hdfsraid: %w %q", ErrNotFound, name)
	}
	for e := range fi.Extents {
		if s.pendingSwapLocked(name, e) {
			return nil, fmt.Errorf("hdfsraid: %q extent %d is mid-swap in the journal; run Recover", name, e)
		}
	}
	if !internal {
		if s.OnRead != nil {
			s.OnRead(name)
		}
		if s.OnReadExtent != nil {
			for i := range fi.Extents {
				s.OnReadExtent(name, i)
			}
		}
	}
	ccs, err := s.extentCodecs(fi)
	if err != nil {
		return nil, err
	}
	bs := s.blockSize
	out := make([]byte, fi.Length)
	// Flatten the extent map into independent (extent, stripe) jobs a
	// worker pool drains: stripes of different extents decode with
	// different codes but share the frame pool and the output buffer.
	type stripeJob struct{ ext, stripe int }
	var jobs []stripeJob
	for e, ext := range fi.Extents {
		for i := 0; i < ext.Stripes; i++ {
			jobs = append(jobs, stripeJob{e, i})
		}
	}
	if len(jobs) == 0 {
		return out, nil
	}

	// Pool size: the widest calibrated decode fan-out among the codes
	// this file's extents actually use (GOMAXPROCS uncalibrated).
	workers := 0
	for _, cc := range ccs {
		if w := s.decodeWorkersFor(cc.code.Name()); w > workers {
			workers = w
		}
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	errs := make([]error, workers)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var frames [][]byte // free frames, reused across this worker's stripes
			defer func() {
				for _, f := range frames {
					s.framePool.Put(f)
				}
			}()
			getFrame := func() []byte {
				if n := len(frames); n > 0 {
					f := frames[n-1]
					frames = frames[:n-1]
					return f
				}
				return s.framePool.Get()
			}
			var symbols, used [][]byte
			// heals collects (symbol, node) pairs whose replica read
			// failed with a verdict (corrupt or missing frame) this
			// stripe; once the stripe decodes, each is repaired in
			// place from the decoded bytes.
			type healCand struct{ sym, v int }
			var heals []healCand
			for j := w; j < len(jobs) && !failed.Load(); j += workers {
				ext, i := jobs[j].ext, jobs[j].stripe
				e := fi.Extents[ext]
				cc := ccs[ext]
				p := cc.code.Placement()
				k := cc.code.DataSymbols()
				nsym := cc.code.Symbols()
				if cap(symbols) < nsym {
					symbols = make([][]byte, nsym)
					used = make([][]byte, 0, nsym)
				}
				symbols = symbols[:nsym]
				used = used[:0]
				heals = heals[:0]
				for sym := 0; sym < nsym; sym++ {
					symbols[sym] = nil
					for _, v := range p.SymbolNodes[sym] {
						frame := getFrame()
						data, err := s.readBlockInto(s.extentBlockPath(v, name, fi, ext, i, sym), frame)
						if err != nil {
							frames = append(frames, frame)
							if !transientReadErr(err) {
								heals = append(heals, healCand{sym, v})
							}
							continue
						}
						symbols[sym] = data
						used = append(used, frame)
						break
					}
					if symbols[sym] == nil {
						degraded.Store(true)
					}
				}
				data, err := cc.code.Decode(symbols)
				if err != nil {
					errs[w] = fmt.Errorf("hdfsraid: decoding %q extent %d stripe %d: %w", name, ext, i, err)
					failed.Store(true)
				} else {
					for _, h := range heals {
						// Decoded data blocks heal directly; parity
						// replicas reconstruct via re-encode inside
						// healBlock.
						var content []byte
						if h.sym < k {
							content = data[h.sym]
						}
						if s.healBlock(cc, name, fi, ext, i, h.sym, h.v, content) == nil && s.obs != nil {
							s.obs.readHeal.Inc()
						}
					}
					for b := 0; b < k; b++ {
						g := e.Start + i*k + b // file-global data block
						if g >= e.Start+e.Blocks {
							break // extent tail padding
						}
						off := g * bs
						if off >= len(out) {
							break
						}
						n := len(out) - off
						if n > bs {
							n = bs
						}
						copy(out[off:off+n], data[b][:n])
					}
				}
				frames = append(frames, used...)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if s.obs != nil {
		elapsed := time.Since(start).Nanoseconds()
		if degraded.Load() {
			s.obs.getDegraded.Observe(elapsed)
			s.obs.readsDegraded.Inc()
		} else {
			s.obs.getIntact.Observe(elapsed)
		}
		s.obs.bytesOut.Add(int64(len(out)))
	}
	return out, nil
}

// KillNode erases a node's directory contents, simulating node loss.
func (s *Store) KillNode(v int) error {
	if v < 0 || v >= s.Nodes() {
		return fmt.Errorf("hdfsraid: invalid node %d", v)
	}
	if err := os.RemoveAll(s.nodeDir(v)); err != nil {
		return err
	}
	return os.MkdirAll(s.nodeDir(v), 0o755)
}

// RepairReport summarizes one repair run.
type RepairReport struct {
	Stripes        int // stripes touched
	Transfers      int // block-units moved (the paper's repair bandwidth)
	BlocksRestored int
}

// Repair rebuilds the given failed nodes for every stored file by
// planning and executing each stripe's repair against the on-disk
// blocks, extent by extent (each extent's code plans its own repair).
// Only the plans' transfers touch data from other nodes, so the
// report's Transfers is the true network bill. When the Heat hook is
// set, hot files are repaired before cold ones, so the files
// foreground traffic cares about most regain their replicas first —
// and before any error cuts the pass short. Per-file repair work is
// independent, so files fan out to a calibrated worker pool — the
// widest tuned decode width among the store's codes, GOMAXPROCS when
// uncalibrated —
// (the same shape Rebalance uses for moves): workers pull files in
// heat order, and on error the remaining queue is abandoned while
// in-flight repairs drain.
func (s *Store) Repair(failed []int) (RepairReport, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var rep RepairReport
	if s.obs != nil {
		start := time.Now()
		defer func() {
			s.obs.repairNs.Observe(time.Since(start).Nanoseconds())
			s.obs.repairBlocks.Add(int64(rep.BlocksRestored))
			s.obs.repairTransfers.Add(int64(rep.Transfers))
		}()
	}
	// Reject out-of-range node indices up front: the per-extent filter
	// below must only drop nodes a *narrower* extent code doesn't
	// span, never hide a typo as a successful no-op repair.
	max := s.code.Nodes()
	for _, fi := range s.manifest.Files {
		for _, e := range fi.Extents {
			if cc, err := s.codecByName(e.Code); err == nil && cc.code.Nodes() > max {
				max = cc.code.Nodes()
			}
		}
	}
	for _, f := range failed {
		if f < 0 || f >= max {
			return rep, fmt.Errorf("hdfsraid: invalid node %d", f)
		}
	}
	names := s.filesLocked()
	if s.Heat != nil {
		// Decorate once — the hook may take locks or do decay math —
		// then sort hottest first, names breaking ties.
		heat := make(map[string]float64, len(names))
		for _, name := range names {
			heat[name] = s.Heat(name)
		}
		sort.SliceStable(names, func(i, j int) bool {
			if heat[names[i]] != heat[names[j]] {
				return heat[names[i]] > heat[names[j]]
			}
			return names[i] < names[j]
		})
	}
	if len(names) == 0 {
		return rep, nil
	}
	workers := s.repairWorkers()
	if workers > len(names) {
		workers = len(names)
	}
	var (
		next     atomic.Int64
		failedOp atomic.Bool
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failedOp.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(names) {
					return
				}
				name := names[i]
				frep, err := s.repairFile(name, s.manifest.Files[name], failed)
				mu.Lock()
				rep.Stripes += frep.Stripes
				rep.Transfers += frep.Transfers
				rep.BlocksRestored += frep.BlocksRestored
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					failedOp.Store(true)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return rep, firstErr
}

// repairFile rebuilds one file's blocks on the failed nodes, extent by
// extent. Caller holds mu's read side.
func (s *Store) repairFile(name string, fi FileInfo, failed []int) (RepairReport, error) {
	var rep RepairReport
	for ext, e := range fi.Extents {
		cc, err := s.codecByName(e.Code)
		if err != nil {
			return rep, err
		}
		planner, ok := cc.code.(core.RepairPlanner)
		if !ok {
			return rep, fmt.Errorf("hdfsraid: code %s cannot plan repairs", cc.code.Name())
		}
		// Nodes beyond this extent's code length hold none of its
		// blocks.
		var extFailed []int
		for _, f := range failed {
			if f < cc.code.Nodes() {
				extFailed = append(extFailed, f)
			}
		}
		if len(extFailed) == 0 {
			continue
		}
		p := cc.code.Placement()
		// The failure pattern is fixed across stripes, so plan once and
		// execute per stripe with pooled frames and payloads.
		plan, err := planner.PlanRepair(extFailed)
		if err != nil {
			return rep, err
		}
		isFailed := map[int]bool{}
		for _, f := range extFailed {
			isFailed[f] = true
		}
		var frames [][]byte
		releaseFrames := func() {
			for _, f := range frames {
				s.framePool.Put(f)
			}
			frames = frames[:0]
		}
		for i := 0; i < e.Stripes; i++ {
			// Load surviving node contents into pooled frames.
			nc := make(core.NodeContents, cc.code.Nodes())
			for v := range nc {
				nc[v] = map[int][]byte{}
				if isFailed[v] {
					continue
				}
				for _, sym := range p.NodeSymbols[v] {
					frame := s.framePool.Get()
					data, err := s.readBlockInto(s.extentBlockPath(v, name, fi, ext, i, sym), frame)
					if err != nil {
						s.framePool.Put(frame)
						continue // tolerate extra damage; the plan will fail loudly if fatal
					}
					frames = append(frames, frame)
					nc[v][sym] = data
				}
			}
			if err := core.ExecuteRepairPooled(nc, plan, s.blockSize, s.payloadPool); err != nil {
				releaseFrames()
				return rep, fmt.Errorf("hdfsraid: %s extent %d stripe %d: %w", name, ext, i, err)
			}
			// Persist the restored replicas, recycling each recovered
			// buffer (drawn from the payload pool by the executor) the
			// moment it is on disk.
			for _, f := range extFailed {
				for _, sym := range p.NodeSymbols[f] {
					buf, ok := nc[f][sym]
					if !ok {
						releaseFrames()
						return rep, fmt.Errorf("hdfsraid: %s extent %d stripe %d: symbol %d not restored on node %d", name, ext, i, sym, f)
					}
					if err := s.writeBlock(s.extentBlockPath(f, name, fi, ext, i, sym), buf); err != nil {
						releaseFrames()
						return rep, err
					}
					s.payloadPool.Put(buf)
					rep.BlocksRestored++
				}
			}
			releaseFrames()
			rep.Stripes++
			rep.Transfers += plan.Bandwidth()
		}
	}
	return rep, nil
}

// FsckReport summarizes an integrity scan.
type FsckReport struct {
	Blocks  int
	Missing int
	Corrupt int
}

// Healthy reports whether every expected block replica is present and
// checksums clean.
func (r FsckReport) Healthy() bool { return r.Missing == 0 && r.Corrupt == 0 }

// Fsck scans every expected block replica of every file.
func (s *Store) Fsck() (FsckReport, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var rep FsckReport
	if s.obs != nil {
		start := time.Now()
		defer func() {
			s.obs.fsckNs.Observe(time.Since(start).Nanoseconds())
			s.obs.fsckMissing.Add(int64(rep.Missing))
			s.obs.fsckCorrupt.Add(int64(rep.Corrupt))
		}()
	}
	frame := s.framePool.Get()
	defer s.framePool.Put(frame)
	for _, name := range s.filesLocked() {
		fi := s.manifest.Files[name]
		for ext, e := range fi.Extents {
			cc, err := s.codecByName(e.Code)
			if err != nil {
				return rep, err
			}
			p := cc.code.Placement()
			for i := 0; i < e.Stripes; i++ {
				for sym := 0; sym < cc.code.Symbols(); sym++ {
					for _, v := range p.SymbolNodes[sym] {
						rep.Blocks++
						_, err := s.readBlockInto(s.extentBlockPath(v, name, fi, ext, i, sym), frame)
						switch {
						case err == nil:
						case errors.Is(err, ErrCorrupt):
							rep.Corrupt++
						case os.IsNotExist(err):
							rep.Missing++
						default:
							return rep, err
						}
					}
				}
			}
		}
	}
	return rep, nil
}

// CorruptBlock flips a byte in a stored block replica (for testing and
// demos of checksum detection).
func (s *Store) CorruptBlock(v int, name string, stripe, symbol int) error {
	path := s.blockPath(v, name, stripe, symbol)
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("hdfsraid: empty block %s", path)
	}
	raw[0] ^= 0xFF
	return os.WriteFile(path, raw, 0o644)
}
