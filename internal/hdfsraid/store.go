// Package hdfsraid is a miniature on-disk HDFS-RAID: it stores files
// striped by any registered code across per-node directories, survives
// killed nodes up to the code's fault tolerance, repairs them with the
// code's repair plans (moving only the planned partial parities and
// copies), and verifies block integrity with CRC-32C trailers — the
// same shape as the Facebook HDFS-RAID module the paper's prototype
// was built on, scaled to a laptop.
//
// On-disk layout:
//
//	root/manifest.json
//	root/node-03/myfile.2.7    (stripe 2, symbol 7; block bytes + CRC)
package hdfsraid

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/block"
	"repro/internal/core"
)

// Manifest records the store's configuration and file table.
type Manifest struct {
	CodeName  string              `json:"code"`
	BlockSize int                 `json:"block_size"`
	Files     map[string]FileInfo `json:"files"`
}

// FileInfo records one stored file.
type FileInfo struct {
	Length  int `json:"length"`
	Stripes int `json:"stripes"`
}

// Store is an open on-disk cluster.
type Store struct {
	root     string
	code     core.Code
	striper  *core.Striper
	manifest Manifest
}

const manifestName = "manifest.json"

// Create initializes a new store at root for the named code.
func Create(root, codeName string, blockSize int) (*Store, error) {
	c, err := core.New(codeName)
	if err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(root, manifestName)); err == nil {
		return nil, fmt.Errorf("hdfsraid: store already exists at %s", root)
	}
	st, err := core.NewStriper(c, blockSize)
	if err != nil {
		return nil, err
	}
	s := &Store{
		root: root, code: c, striper: st,
		manifest: Manifest{CodeName: codeName, BlockSize: blockSize, Files: map[string]FileInfo{}},
	}
	for v := 0; v < c.Nodes(); v++ {
		if err := os.MkdirAll(s.nodeDir(v), 0o755); err != nil {
			return nil, err
		}
	}
	if err := s.saveManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open loads an existing store.
func Open(root string) (*Store, error) {
	raw, err := os.ReadFile(filepath.Join(root, manifestName))
	if err != nil {
		return nil, fmt.Errorf("hdfsraid: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("hdfsraid: corrupt manifest: %w", err)
	}
	c, err := core.New(m.CodeName)
	if err != nil {
		return nil, err
	}
	st, err := core.NewStriper(c, m.BlockSize)
	if err != nil {
		return nil, err
	}
	if m.Files == nil {
		m.Files = map[string]FileInfo{}
	}
	return &Store{root: root, code: c, striper: st, manifest: m}, nil
}

// Code returns the store's coding scheme.
func (s *Store) Code() core.Code { return s.code }

// Files lists stored file names in sorted order.
func (s *Store) Files() []string {
	names := make([]string, 0, len(s.manifest.Files))
	for n := range s.manifest.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Info returns metadata for a stored file.
func (s *Store) Info(name string) (FileInfo, bool) {
	fi, ok := s.manifest.Files[name]
	return fi, ok
}

func (s *Store) nodeDir(v int) string {
	return filepath.Join(s.root, fmt.Sprintf("node-%02d", v))
}

func (s *Store) blockPath(v int, name string, stripe, symbol int) string {
	return filepath.Join(s.nodeDir(v), fmt.Sprintf("%s.%d.%d", name, stripe, symbol))
}

func (s *Store) saveManifest() error {
	raw, err := json.MarshalIndent(s.manifest, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(s.root, manifestName), raw, 0o644)
}

// writeBlock writes block bytes with a CRC-32C trailer.
func writeBlock(path string, data []byte) error {
	buf := make([]byte, len(data)+4)
	copy(buf, data)
	binary.LittleEndian.PutUint32(buf[len(data):], block.Checksum(data))
	return os.WriteFile(path, buf, 0o644)
}

// ErrCorrupt reports a checksum mismatch.
var ErrCorrupt = errors.New("hdfsraid: block checksum mismatch")

// readBlock reads and verifies one block file.
func readBlock(path string, blockSize int) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) != blockSize+4 {
		return nil, fmt.Errorf("%w: %s has %d bytes, want %d", ErrCorrupt, path, len(raw), blockSize+4)
	}
	data := raw[:blockSize]
	if binary.LittleEndian.Uint32(raw[blockSize:]) != block.Checksum(data) {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, path)
	}
	return data, nil
}

// Put stripes, encodes and stores a file, writing every symbol replica
// to its placement node.
func (s *Store) Put(name string, data []byte) error {
	if name == "" || filepath.Base(name) != name {
		return fmt.Errorf("hdfsraid: invalid file name %q", name)
	}
	if _, dup := s.manifest.Files[name]; dup {
		return fmt.Errorf("hdfsraid: file %q already stored", name)
	}
	stripes, err := s.striper.EncodeFile(data)
	if err != nil {
		return err
	}
	p := s.code.Placement()
	for _, stripe := range stripes {
		for sym, buf := range stripe.Symbols {
			for _, v := range p.SymbolNodes[sym] {
				if err := writeBlock(s.blockPath(v, name, stripe.Index, sym), buf); err != nil {
					return err
				}
			}
		}
	}
	s.manifest.Files[name] = FileInfo{Length: len(data), Stripes: len(stripes)}
	return s.saveManifest()
}

// Get reads a file back, decoding around missing or corrupt blocks as
// long as each stripe remains within the code's erasure tolerance.
func (s *Store) Get(name string) ([]byte, error) {
	fi, ok := s.manifest.Files[name]
	if !ok {
		return nil, fmt.Errorf("hdfsraid: no such file %q", name)
	}
	p := s.code.Placement()
	stripes := make([]core.EncodedStripe, fi.Stripes)
	for i := 0; i < fi.Stripes; i++ {
		symbols := make([][]byte, s.code.Symbols())
		for sym := range symbols {
			for _, v := range p.SymbolNodes[sym] {
				data, err := readBlock(s.blockPath(v, name, i, sym), s.manifest.BlockSize)
				if err == nil {
					symbols[sym] = data
					break
				}
			}
		}
		stripes[i] = core.EncodedStripe{Index: i, Symbols: symbols}
	}
	return s.striper.DecodeFile(stripes, fi.Length)
}

// KillNode erases a node's directory contents, simulating node loss.
func (s *Store) KillNode(v int) error {
	if v < 0 || v >= s.code.Nodes() {
		return fmt.Errorf("hdfsraid: invalid node %d", v)
	}
	if err := os.RemoveAll(s.nodeDir(v)); err != nil {
		return err
	}
	return os.MkdirAll(s.nodeDir(v), 0o755)
}

// RepairReport summarizes one repair run.
type RepairReport struct {
	Stripes        int // stripes touched
	Transfers      int // block-units moved (the paper's repair bandwidth)
	BlocksRestored int
}

// Repair rebuilds the given failed nodes for every stored file by
// planning and executing each stripe's repair against the on-disk
// blocks. Only the plans' transfers touch data from other nodes, so
// the report's Transfers is the true network bill.
func (s *Store) Repair(failed []int) (RepairReport, error) {
	planner, ok := s.code.(core.RepairPlanner)
	if !ok {
		return RepairReport{}, fmt.Errorf("hdfsraid: code %s cannot plan repairs", s.code.Name())
	}
	var rep RepairReport
	p := s.code.Placement()
	for _, name := range s.Files() {
		fi := s.manifest.Files[name]
		for i := 0; i < fi.Stripes; i++ {
			plan, err := planner.PlanRepair(failed)
			if err != nil {
				return rep, err
			}
			// Load surviving node contents.
			nc := make(core.NodeContents, s.code.Nodes())
			isFailed := map[int]bool{}
			for _, f := range failed {
				isFailed[f] = true
			}
			for v := range nc {
				nc[v] = map[int][]byte{}
				if isFailed[v] {
					continue
				}
				for _, sym := range p.NodeSymbols[v] {
					data, err := readBlock(s.blockPath(v, name, i, sym), s.manifest.BlockSize)
					if err != nil {
						continue // tolerate extra damage; the plan will fail loudly if fatal
					}
					nc[v][sym] = data
				}
			}
			if err := core.ExecuteRepair(nc, plan, s.manifest.BlockSize); err != nil {
				return rep, fmt.Errorf("hdfsraid: %s stripe %d: %w", name, i, err)
			}
			// Persist the restored replicas.
			for _, f := range failed {
				for _, sym := range p.NodeSymbols[f] {
					buf, ok := nc[f][sym]
					if !ok {
						return rep, fmt.Errorf("hdfsraid: %s stripe %d: symbol %d not restored on node %d", name, i, sym, f)
					}
					if err := writeBlock(s.blockPath(f, name, i, sym), buf); err != nil {
						return rep, err
					}
					rep.BlocksRestored++
				}
			}
			rep.Stripes++
			rep.Transfers += plan.Bandwidth()
		}
	}
	return rep, nil
}

// FsckReport summarizes an integrity scan.
type FsckReport struct {
	Blocks  int
	Missing int
	Corrupt int
}

// Healthy reports whether every expected block replica is present and
// checksums clean.
func (r FsckReport) Healthy() bool { return r.Missing == 0 && r.Corrupt == 0 }

// Fsck scans every expected block replica of every file.
func (s *Store) Fsck() (FsckReport, error) {
	var rep FsckReport
	p := s.code.Placement()
	for _, name := range s.Files() {
		fi := s.manifest.Files[name]
		for i := 0; i < fi.Stripes; i++ {
			for sym := 0; sym < s.code.Symbols(); sym++ {
				for _, v := range p.SymbolNodes[sym] {
					rep.Blocks++
					_, err := readBlock(s.blockPath(v, name, i, sym), s.manifest.BlockSize)
					switch {
					case err == nil:
					case errors.Is(err, ErrCorrupt):
						rep.Corrupt++
					case os.IsNotExist(err):
						rep.Missing++
					default:
						return rep, err
					}
				}
			}
		}
	}
	return rep, nil
}

// CorruptBlock flips a byte in a stored block replica (for testing and
// demos of checksum detection).
func (s *Store) CorruptBlock(v int, name string, stripe, symbol int) error {
	path := s.blockPath(v, name, stripe, symbol)
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("hdfsraid: empty block %s", path)
	}
	raw[0] ^= 0xFF
	return os.WriteFile(path, raw, 0o644)
}
