// Package hdfsraid is a miniature on-disk HDFS-RAID: it stores files
// striped by any registered code across per-node directories, survives
// killed nodes up to the code's fault tolerance, repairs them with the
// code's repair plans (moving only the planned partial parities and
// copies), and verifies block integrity with CRC-32C trailers — the
// same shape as the Facebook HDFS-RAID module the paper's prototype
// was built on, scaled to a laptop.
//
// On-disk layout:
//
//	root/manifest.json
//	root/node-03/myfile.2.7    (stripe 2, symbol 7; block bytes + CRC)
package hdfsraid

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/block"
	"repro/internal/core"
)

// Manifest records the store's configuration and file table.
type Manifest struct {
	CodeName  string              `json:"code"`
	BlockSize int                 `json:"block_size"`
	Files     map[string]FileInfo `json:"files"`
}

// FileInfo records one stored file.
type FileInfo struct {
	Length  int `json:"length"`
	Stripes int `json:"stripes"`
	// Code is the file's coding scheme when it differs from the store
	// default, e.g. after a tiering transcode. Empty means the store
	// code.
	Code string `json:"tier_code,omitempty"`
}

// Store is an open on-disk cluster. Reads may run concurrently with
// each other and with Transcode: mu guards the manifest's file table,
// codecMu the per-code codec cache.
type Store struct {
	root    string
	code    core.Code
	striper *core.Striper

	mu       sync.RWMutex
	manifest Manifest

	codecMu sync.Mutex
	codecs  map[string]codec // per-code cache for tiered files

	// tcMu serializes transcodes: staged .tc block names are derived
	// from the target layout, so two in-flight moves of one file
	// would share staging paths.
	tcMu sync.Mutex

	// OnRead, when non-nil, is invoked with the file name on every
	// Get and ReadBlock access. The tier subsystem hooks it to feed
	// heat tracking; it must be cheap and non-blocking. Set it before
	// serving concurrent reads.
	OnRead func(name string)
}

// codec bundles a code with its striper for one block size.
type codec struct {
	code    core.Code
	striper *core.Striper
}

const manifestName = "manifest.json"

// Create initializes a new store at root for the named code.
func Create(root, codeName string, blockSize int) (*Store, error) {
	c, err := core.New(codeName)
	if err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(root, manifestName)); err == nil {
		return nil, fmt.Errorf("hdfsraid: store already exists at %s", root)
	}
	st, err := core.NewStriper(c, blockSize)
	if err != nil {
		return nil, err
	}
	s := &Store{
		root: root, code: c, striper: st,
		manifest: Manifest{CodeName: codeName, BlockSize: blockSize, Files: map[string]FileInfo{}},
		codecs:   map[string]codec{codeName: {c, st}},
	}
	if err := s.ensureNodeDirs(c.Nodes()); err != nil {
		return nil, err
	}
	if err := s.saveManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open loads an existing store.
func Open(root string) (*Store, error) {
	raw, err := os.ReadFile(filepath.Join(root, manifestName))
	if err != nil {
		return nil, fmt.Errorf("hdfsraid: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("hdfsraid: corrupt manifest: %w", err)
	}
	c, err := core.New(m.CodeName)
	if err != nil {
		return nil, err
	}
	st, err := core.NewStriper(c, m.BlockSize)
	if err != nil {
		return nil, err
	}
	if m.Files == nil {
		m.Files = map[string]FileInfo{}
	}
	s := &Store{root: root, code: c, striper: st, manifest: m,
		codecs: map[string]codec{m.CodeName: {c, st}}}
	// Fail fast if the manifest references an unregistered tier code.
	for name, fi := range m.Files {
		if _, err := s.fileCodec(fi); err != nil {
			return nil, fmt.Errorf("hdfsraid: file %q: %w", name, err)
		}
	}
	return s, nil
}

// Code returns the store's default coding scheme (files may be tiered
// onto other codes; see FileCode).
func (s *Store) Code() core.Code { return s.code }

// FileCode returns the effective code name of a stored file.
func (s *Store) FileCode(name string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fi, ok := s.manifest.Files[name]
	if !ok {
		return "", false
	}
	if fi.Code == "" {
		return s.manifest.CodeName, true
	}
	return fi.Code, true
}

// fileCodec resolves the code and striper a file is stored under.
// (CodeName and BlockSize are immutable after open, so only the codec
// cache needs guarding.)
func (s *Store) fileCodec(fi FileInfo) (codec, error) {
	name := fi.Code
	if name == "" {
		name = s.manifest.CodeName
	}
	s.codecMu.Lock()
	defer s.codecMu.Unlock()
	if cc, ok := s.codecs[name]; ok {
		return cc, nil
	}
	c, err := core.New(name)
	if err != nil {
		return codec{}, err
	}
	st, err := core.NewStriper(c, s.manifest.BlockSize)
	if err != nil {
		return codec{}, err
	}
	cc := codec{c, st}
	s.codecs[name] = cc
	return cc, nil
}

// Nodes returns the number of node directories the store spans: the
// default code's length, or more when tiered files use longer codes.
func (s *Store) Nodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.code.Nodes()
	for _, fi := range s.manifest.Files {
		if cc, err := s.fileCodec(fi); err == nil && cc.code.Nodes() > n {
			n = cc.code.Nodes()
		}
	}
	return n
}

// ensureNodeDirs creates node directories 0..n-1 as needed.
func (s *Store) ensureNodeDirs(n int) error {
	for v := 0; v < n; v++ {
		if err := os.MkdirAll(s.nodeDir(v), 0o755); err != nil {
			return err
		}
	}
	return nil
}

// Files lists stored file names in sorted order.
func (s *Store) Files() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.filesLocked()
}

func (s *Store) filesLocked() []string {
	names := make([]string, 0, len(s.manifest.Files))
	for n := range s.manifest.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Info returns metadata for a stored file.
func (s *Store) Info(name string) (FileInfo, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fi, ok := s.manifest.Files[name]
	return fi, ok
}

func (s *Store) nodeDir(v int) string {
	return filepath.Join(s.root, fmt.Sprintf("node-%02d", v))
}

func (s *Store) blockPath(v int, name string, stripe, symbol int) string {
	return filepath.Join(s.nodeDir(v), fmt.Sprintf("%s.%d.%d", name, stripe, symbol))
}

func (s *Store) saveManifest() error {
	raw, err := json.MarshalIndent(s.manifest, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(s.root, manifestName), raw, 0o644)
}

// writeBlock writes block bytes with a CRC-32C trailer.
func writeBlock(path string, data []byte) error {
	buf := make([]byte, len(data)+4)
	copy(buf, data)
	binary.LittleEndian.PutUint32(buf[len(data):], block.Checksum(data))
	return os.WriteFile(path, buf, 0o644)
}

// ErrCorrupt reports a checksum mismatch.
var ErrCorrupt = errors.New("hdfsraid: block checksum mismatch")

// readBlock reads and verifies one block file.
func readBlock(path string, blockSize int) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) != blockSize+4 {
		return nil, fmt.Errorf("%w: %s has %d bytes, want %d", ErrCorrupt, path, len(raw), blockSize+4)
	}
	data := raw[:blockSize]
	if binary.LittleEndian.Uint32(raw[blockSize:]) != block.Checksum(data) {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, path)
	}
	return data, nil
}

// Put stripes, encodes and stores a file, writing every symbol replica
// to its placement node.
func (s *Store) Put(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" || filepath.Base(name) != name {
		return fmt.Errorf("hdfsraid: invalid file name %q", name)
	}
	if _, dup := s.manifest.Files[name]; dup {
		return fmt.Errorf("hdfsraid: file %q already stored", name)
	}
	stripes, err := s.striper.EncodeFile(data)
	if err != nil {
		return err
	}
	p := s.code.Placement()
	for _, stripe := range stripes {
		for sym, buf := range stripe.Symbols {
			for _, v := range p.SymbolNodes[sym] {
				if err := writeBlock(s.blockPath(v, name, stripe.Index, sym), buf); err != nil {
					return err
				}
			}
		}
	}
	s.manifest.Files[name] = FileInfo{Length: len(data), Stripes: len(stripes)}
	return s.saveManifest()
}

// Get reads a file back, decoding around missing or corrupt blocks as
// long as each stripe remains within the code's erasure tolerance.
func (s *Store) Get(name string) ([]byte, error) {
	return s.get(name, false)
}

// get is Get with an internal flag: maintenance reads (transcodes)
// skip the heat hook so tiering moves don't count as accesses. The
// read lock spans the whole read, so a concurrent transcode's block
// swap can never be observed half-done.
func (s *Store) get(name string, internal bool) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fi, ok := s.manifest.Files[name]
	if !ok {
		return nil, fmt.Errorf("hdfsraid: no such file %q", name)
	}
	if !internal && s.OnRead != nil {
		s.OnRead(name)
	}
	cc, err := s.fileCodec(fi)
	if err != nil {
		return nil, err
	}
	p := cc.code.Placement()
	stripes := make([]core.EncodedStripe, fi.Stripes)
	for i := 0; i < fi.Stripes; i++ {
		symbols := make([][]byte, cc.code.Symbols())
		for sym := range symbols {
			for _, v := range p.SymbolNodes[sym] {
				data, err := readBlock(s.blockPath(v, name, i, sym), s.manifest.BlockSize)
				if err == nil {
					symbols[sym] = data
					break
				}
			}
		}
		stripes[i] = core.EncodedStripe{Index: i, Symbols: symbols}
	}
	return cc.striper.DecodeFile(stripes, fi.Length)
}

// KillNode erases a node's directory contents, simulating node loss.
func (s *Store) KillNode(v int) error {
	if v < 0 || v >= s.Nodes() {
		return fmt.Errorf("hdfsraid: invalid node %d", v)
	}
	if err := os.RemoveAll(s.nodeDir(v)); err != nil {
		return err
	}
	return os.MkdirAll(s.nodeDir(v), 0o755)
}

// RepairReport summarizes one repair run.
type RepairReport struct {
	Stripes        int // stripes touched
	Transfers      int // block-units moved (the paper's repair bandwidth)
	BlocksRestored int
}

// Repair rebuilds the given failed nodes for every stored file by
// planning and executing each stripe's repair against the on-disk
// blocks. Only the plans' transfers touch data from other nodes, so
// the report's Transfers is the true network bill.
func (s *Store) Repair(failed []int) (RepairReport, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var rep RepairReport
	// Reject out-of-range node indices up front: the per-file filter
	// below must only drop nodes a *narrower* file code doesn't span,
	// never hide a typo as a successful no-op repair.
	max := s.code.Nodes()
	for _, fi := range s.manifest.Files {
		if cc, err := s.fileCodec(fi); err == nil && cc.code.Nodes() > max {
			max = cc.code.Nodes()
		}
	}
	for _, f := range failed {
		if f < 0 || f >= max {
			return rep, fmt.Errorf("hdfsraid: invalid node %d", f)
		}
	}
	for _, name := range s.filesLocked() {
		fi := s.manifest.Files[name]
		cc, err := s.fileCodec(fi)
		if err != nil {
			return rep, err
		}
		planner, ok := cc.code.(core.RepairPlanner)
		if !ok {
			return rep, fmt.Errorf("hdfsraid: code %s cannot plan repairs", cc.code.Name())
		}
		// Nodes beyond this file's code length hold none of its blocks.
		var fileFailed []int
		for _, f := range failed {
			if f < cc.code.Nodes() {
				fileFailed = append(fileFailed, f)
			}
		}
		if len(fileFailed) == 0 {
			continue
		}
		p := cc.code.Placement()
		for i := 0; i < fi.Stripes; i++ {
			plan, err := planner.PlanRepair(fileFailed)
			if err != nil {
				return rep, err
			}
			// Load surviving node contents.
			nc := make(core.NodeContents, cc.code.Nodes())
			isFailed := map[int]bool{}
			for _, f := range fileFailed {
				isFailed[f] = true
			}
			for v := range nc {
				nc[v] = map[int][]byte{}
				if isFailed[v] {
					continue
				}
				for _, sym := range p.NodeSymbols[v] {
					data, err := readBlock(s.blockPath(v, name, i, sym), s.manifest.BlockSize)
					if err != nil {
						continue // tolerate extra damage; the plan will fail loudly if fatal
					}
					nc[v][sym] = data
				}
			}
			if err := core.ExecuteRepair(nc, plan, s.manifest.BlockSize); err != nil {
				return rep, fmt.Errorf("hdfsraid: %s stripe %d: %w", name, i, err)
			}
			// Persist the restored replicas.
			for _, f := range fileFailed {
				for _, sym := range p.NodeSymbols[f] {
					buf, ok := nc[f][sym]
					if !ok {
						return rep, fmt.Errorf("hdfsraid: %s stripe %d: symbol %d not restored on node %d", name, i, sym, f)
					}
					if err := writeBlock(s.blockPath(f, name, i, sym), buf); err != nil {
						return rep, err
					}
					rep.BlocksRestored++
				}
			}
			rep.Stripes++
			rep.Transfers += plan.Bandwidth()
		}
	}
	return rep, nil
}

// FsckReport summarizes an integrity scan.
type FsckReport struct {
	Blocks  int
	Missing int
	Corrupt int
}

// Healthy reports whether every expected block replica is present and
// checksums clean.
func (r FsckReport) Healthy() bool { return r.Missing == 0 && r.Corrupt == 0 }

// Fsck scans every expected block replica of every file.
func (s *Store) Fsck() (FsckReport, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var rep FsckReport
	for _, name := range s.filesLocked() {
		fi := s.manifest.Files[name]
		cc, err := s.fileCodec(fi)
		if err != nil {
			return rep, err
		}
		p := cc.code.Placement()
		for i := 0; i < fi.Stripes; i++ {
			for sym := 0; sym < cc.code.Symbols(); sym++ {
				for _, v := range p.SymbolNodes[sym] {
					rep.Blocks++
					_, err := readBlock(s.blockPath(v, name, i, sym), s.manifest.BlockSize)
					switch {
					case err == nil:
					case errors.Is(err, ErrCorrupt):
						rep.Corrupt++
					case os.IsNotExist(err):
						rep.Missing++
					default:
						return rep, err
					}
				}
			}
		}
	}
	return rep, nil
}

// CorruptBlock flips a byte in a stored block replica (for testing and
// demos of checksum detection).
func (s *Store) CorruptBlock(v int, name string, stripe, symbol int) error {
	path := s.blockPath(v, name, stripe, symbol)
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("hdfsraid: empty block %s", path)
	}
	raw[0] ^= 0xFF
	return os.WriteFile(path, raw, 0o644)
}
