package hdfsraid

import (
	"bytes"
	"testing"
)

// TestScrubTrickleBudget verifies the cursor arithmetic: a budget of N
// frames scans at most N blocks per call, successive calls resume
// where the last stopped, and a full circuit reports Wrapped.
func TestScrubTrickleBudget(t *testing.T) {
	s := newStore(t, "rs-9-6")
	data := randomFile(t, 2*blockSize*s.Code().DataSymbols(), 60)
	if err := s.Put("f", data); err != nil {
		t.Fatal(err)
	}
	fsck, err := s.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	total := fsck.Blocks // every replica the store expects
	frame := int64(blockSize + 4)

	scanned := 0
	calls := 0
	for scanned < total {
		rep, err := s.Scrub(3 * frame)
		if err != nil {
			t.Fatal(err)
		}
		if rep.BlocksScanned < 1 || rep.BlocksScanned > 3 {
			t.Fatalf("call scanned %d blocks, want 1..3", rep.BlocksScanned)
		}
		if rep.CorruptFound+rep.MissingFound != 0 {
			t.Fatalf("clean store reported errors: %+v", rep)
		}
		if rep.Wrapped {
			t.Fatalf("a %d-block call of %d total claimed full coverage", rep.BlocksScanned, total)
		}
		scanned += rep.BlocksScanned
		calls++
	}
	if calls < total/3 {
		t.Fatalf("full coverage took %d calls for %d blocks at 3/call", calls, total)
	}
	// An unbudgeted pass covers everything in one call.
	rep, err := s.Scrub(0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Wrapped || rep.BlocksScanned != total {
		t.Fatalf("full pass = %+v, want all %d blocks", rep, total)
	}
}

// TestScrubFindsAndHeals: latent corruption in two different stripes
// is found by trickle passes and healed in place — the reads never
// tripped over it, the scrubber did.
func TestScrubFindsAndHeals(t *testing.T) {
	s := newStore(t, "rs-9-6")
	data := randomFile(t, 3*blockSize*s.Code().DataSymbols(), 61)
	if err := s.Put("f", data); err != nil {
		t.Fatal(err)
	}
	if err := s.CorruptBlock(2, "f", 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.CorruptBlock(4, "f", 1, 4); err != nil {
		t.Fatal(err)
	}

	// Trickle until the cursor has made one full circuit; the two bad
	// frames must be healed along the way.
	fsck, err := s.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	healed, scanned := 0, 0
	frame := int64(blockSize + 4)
	for scanned < fsck.Blocks {
		rep, err := s.Scrub(5 * frame)
		if err != nil {
			t.Fatal(err)
		}
		healed += rep.Healed
		scanned += rep.BlocksScanned
		if rep.Unrepairable != 0 {
			t.Fatalf("unrepairable in a 2-error store: %+v", rep)
		}
	}
	if healed != 2 {
		t.Fatalf("healed %d blocks, want 2", healed)
	}
	fsck, err = s.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !fsck.Healthy() {
		t.Fatalf("store not healthy after scrub: %+v", fsck)
	}
	if got, err := s.Get("f"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-scrub read: err %v", err)
	}
	if q, _ := s.Quarantined(); len(q) != 2 {
		t.Fatalf("quarantined frames = %d, want 2", len(q))
	}
	if s.obs.scrubFound.Value() != 2 || s.obs.scrubHealed.Value() != 2 {
		t.Fatalf("scrub counters found=%d healed=%d, want 2/2",
			s.obs.scrubFound.Value(), s.obs.scrubHealed.Value())
	}
	if s.obs.scrubBytes.Value() == 0 || s.obs.scrubBlocks.Value() == 0 {
		t.Fatal("scrub byte/block counters stayed zero")
	}
}

// TestScrubUnrepairable: a stripe beyond the code's tolerance is
// reported, not silently dropped — and the corrupt frames stay on disk
// for a future repair instead of vanishing into quarantine.
func TestScrubUnrepairable(t *testing.T) {
	s := newStore(t, "rs-9-6")
	data := randomFile(t, blockSize*s.Code().DataSymbols(), 62)
	if err := s.Put("f", data); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ { // tolerance is 3
		if err := s.CorruptBlock(v, "f", 0, v); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Scrub(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorruptFound != 4 || rep.Unrepairable != 4 || rep.Healed != 0 {
		t.Fatalf("report = %+v, want 4 found, 4 unrepairable", rep)
	}
	if s.obs.scrubUnrepairable.Value() != 4 {
		t.Fatalf("unrepairable counter = %d, want 4", s.obs.scrubUnrepairable.Value())
	}
	// Every corrupt frame restored, none lost to quarantine.
	if q, _ := s.Quarantined(); len(q) != 0 {
		t.Fatalf("unrepairable frames left in quarantine: %v", q)
	}
	fsck, err := s.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if fsck.Corrupt != 4 {
		t.Fatalf("fsck sees %d corrupt frames, want the original 4", fsck.Corrupt)
	}
}
