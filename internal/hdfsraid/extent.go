package hdfsraid

import (
	"fmt"
	"path/filepath"
	"sort"
)

// Extent is one contiguous run of a file's data blocks, striped and
// coded independently of its neighbors: the unit of tiering. A file is
// a sequence of extents covering data blocks [Start, Start+Blocks) in
// order; each extent carries its own code and stripe set, so a hot
// region of a large cold file can sit on a double-replication code
// while the rest stays on RS. Extent boundaries are fixed at ingest
// (Put splits files into store-configured extent-sized runs; legacy
// manifests migrate on Open as single-extent files) and never move —
// a transcode changes an extent's code and stripe count, never its
// data-block range.
type Extent struct {
	// Start is the extent's first data block, file-global.
	Start int `json:"start"`
	// Blocks is the number of data blocks the extent covers.
	Blocks int `json:"blocks"`
	// Stripes is the extent's stripe count under Code at the store
	// block size: ceil(Blocks / k).
	Stripes int `json:"stripes"`
	// Code is the extent's coding scheme; empty means the store
	// default.
	Code string `json:"code,omitempty"`
}

// stripesFor returns the stripes needed for blocks data blocks under a
// code with k data symbols.
func stripesFor(blocks, k int) int {
	if blocks <= 0 {
		return 0
	}
	return (blocks + k - 1) / k
}

// dataBlocks returns the data blocks a length-byte file occupies at
// the store's block size.
func (s *Store) dataBlocks(length int) int {
	return (length + s.blockSize - 1) / s.blockSize
}

// buildExtents splits a length-byte file into the store's ingest
// extents: ExtentBlocks-sized runs under the default code (a trailing
// partial run keeps the remainder), or one extent covering the whole
// file when extents are disabled (ExtentBlocks <= 0).
func (s *Store) buildExtents(length int) []Extent {
	blocks := s.dataBlocks(length)
	k := s.code.DataSymbols()
	per := s.extentBlocks
	if per <= 0 || blocks <= per {
		return []Extent{{Start: 0, Blocks: blocks, Stripes: stripesFor(blocks, k)}}
	}
	exts := make([]Extent, 0, (blocks+per-1)/per)
	for start := 0; start < blocks; start += per {
		n := per
		if start+n > blocks {
			n = blocks - start
		}
		exts = append(exts, Extent{Start: start, Blocks: n, Stripes: stripesFor(n, k)})
	}
	return exts
}

// refreshSummary recomputes fi's legacy summary fields from its extent
// map: Stripes is the total across extents, and Code mirrors the
// extent code for single-extent files so manifests written by this
// version stay readable (and meaningful) to pre-extent tooling.
func refreshSummary(fi *FileInfo) {
	total := 0
	for _, e := range fi.Extents {
		total += e.Stripes
	}
	fi.Stripes = total
	if len(fi.Extents) == 1 {
		fi.Code = fi.Extents[0].Code
	} else {
		fi.Code = ""
	}
}

// normalizeFileInfo migrates a legacy per-file manifest entry to the
// extent map in memory: a file without extents becomes a single-extent
// file on its recorded code, byte-for-byte the same layout. Entries
// that already carry extents pass through untouched.
func (s *Store) normalizeFileInfo(fi FileInfo) FileInfo {
	if len(fi.Extents) > 0 {
		return fi
	}
	fi.Extents = []Extent{{
		Start:   0,
		Blocks:  s.dataBlocks(fi.Length),
		Stripes: fi.Stripes,
		Code:    fi.Code,
	}}
	return fi
}

// normalizeManifestLocked migrates every legacy file entry to the
// extent map. Caller holds mu (or has exclusive access during Open).
func (s *Store) normalizeManifestLocked() {
	for name, fi := range s.manifest.Files {
		if len(fi.Extents) == 0 {
			s.manifest.Files[name] = s.normalizeFileInfo(fi)
		}
	}
}

// validateExtents checks that a file's extent map tiles its data
// blocks exactly, with consistent stripe counts, and that every extent
// code is registered.
func (s *Store) validateExtents(name string, fi FileInfo) error {
	if len(fi.Extents) == 0 {
		return fmt.Errorf("hdfsraid: file %q has no extents", name)
	}
	next, totalStripes := 0, 0
	for i, e := range fi.Extents {
		if e.Start != next || (e.Blocks <= 0 && fi.Length > 0) {
			return fmt.Errorf("hdfsraid: file %q extent %d does not tile (start %d, want %d)", name, i, e.Start, next)
		}
		cc, err := s.codecByName(e.Code)
		if err != nil {
			return fmt.Errorf("hdfsraid: file %q extent %d: %w", name, i, err)
		}
		if want := stripesFor(e.Blocks, cc.code.DataSymbols()); e.Stripes != want {
			return fmt.Errorf("hdfsraid: file %q extent %d has %d stripes, want %d", name, i, e.Stripes, want)
		}
		next = e.Start + e.Blocks
		totalStripes += e.Stripes
	}
	if want := s.dataBlocks(fi.Length); next != want {
		return fmt.Errorf("hdfsraid: file %q extents cover %d blocks, want %d", name, next, want)
	}
	if fi.Stripes != totalStripes {
		return fmt.Errorf("hdfsraid: file %q summary has %d stripes, extents total %d", name, fi.Stripes, totalStripes)
	}
	return nil
}

// extentBlockPath is blockPath with the extent dimension: files stored
// under extent-style naming qualify every block with its extent index
// (name.x<ext>.<stripe>.<symbol>), while legacy and migrated files
// keep the flat name.<stripe>.<symbol> form their blocks were written
// under. The naming style is fixed per file at ingest (FileInfo
// .ExtentPaths), so concurrent extent moves of one file never collide
// on staging paths.
func (s *Store) extentBlockPath(v int, name string, fi FileInfo, ext, stripe, sym int) string {
	if !fi.ExtentPaths {
		return s.blockPath(v, name, stripe, sym)
	}
	return filepath.Join(s.nodeDir(v), fmt.Sprintf("%s.x%d.%d.%d", name, ext, stripe, sym))
}

// extentOf returns the index of the extent containing file-global data
// block g. Caller guarantees g is within the file's data blocks.
func extentOf(fi FileInfo, g int) int {
	return sort.Search(len(fi.Extents), func(i int) bool {
		e := fi.Extents[i]
		return g < e.Start+e.Blocks
	})
}

// Extents returns a copy of a file's extent map (a migrated legacy
// file shows a single extent spanning the whole file).
func (s *Store) Extents(name string) ([]Extent, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fi, ok := s.manifest.Files[name]
	if !ok {
		return nil, false
	}
	return append([]Extent(nil), fi.Extents...), true
}

// ExtentOf returns the index of the extent holding the file's data
// block, or -1 when the file or block is unknown.
func (s *Store) ExtentOf(name string, block int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fi, ok := s.manifest.Files[name]
	if !ok || block < 0 || block >= s.dataBlocks(fi.Length) {
		return -1
	}
	return extentOf(fi, block)
}

// ExtentCode returns the effective code name of one extent of a file.
func (s *Store) ExtentCode(name string, ext int) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fi, ok := s.manifest.Files[name]
	if !ok || ext < 0 || ext >= len(fi.Extents) {
		return "", false
	}
	if c := fi.Extents[ext].Code; c != "" {
		return c, true
	}
	return s.codeName, true
}
