package hdfsraid

import (
	"fmt"

	"repro/internal/obs"
)

// Metric and trace names the store registers, also documented in
// docs/OBSERVABILITY.md (keep the two in sync; the CI smoke test greps
// the live endpoint for the core ones).
const (
	// Read path: whole-file Get latency, split by whether every symbol
	// was served from a healthy replica (intact) or at least one stripe
	// had to reconstruct around missing blocks (degraded).
	metricGetIntactNs   = "store_get_intact_ns"
	metricGetDegradedNs = "store_get_degraded_ns"
	// Single-block reads, same split: degraded means the block came
	// through a partial-parity read plan instead of a replica.
	metricReadBlockIntactNs   = "store_readblock_intact_ns"
	metricReadBlockDegradedNs = "store_readblock_degraded_ns"
	metricReadsDegraded       = "store_reads_degraded_total"
	metricBytesOut            = "store_bytes_out_total"

	// Ingest: Put and PutReader latency and bytes accepted.
	metricPutNs   = "store_put_ns"
	metricBytesIn = "store_bytes_in_total"

	// Ranged reads (ReadAt, the serving front door's HTTP Range path)
	// and deletes.
	metricReadAtNs = "store_readat_ns"
	metricDeleteNs = "store_delete_ns"
	metricDeletes  = "store_deletes_total"

	// Maintenance: repair and fsck pass durations and what they found.
	metricRepairNs             = "store_repair_ns"
	metricRepairBlocksRestored = "store_repair_blocks_restored_total"
	metricRepairTransfers      = "store_repair_transfers_total"
	metricFsckNs               = "store_fsck_ns"
	metricFsckMissing          = "store_fsck_missing_total"
	metricFsckCorrupt          = "store_fsck_corrupt_total"

	// Transcode pipeline, per-stage: read (source blocks through the
	// old code, per stripe), encode (new code, per stripe), write
	// (staged replicas, per stripe), swap (the destructive promote
	// phase, per move).
	metricTcReadNs        = "transcode_read_ns"
	metricTcEncodeNs      = "transcode_encode_ns"
	metricTcWriteNs       = "transcode_write_ns"
	metricTcSwapNs        = "transcode_swap_ns"
	metricTcMoves         = "transcode_moves_total"
	metricTcBytesMoved    = "transcode_bytes_moved_total"
	metricTcBlocksRead    = "transcode_blocks_read_total"
	metricTcBlocksWritten = "transcode_blocks_written_total"

	// Journal recovery outcomes.
	metricJournalReplayed   = "journal_replayed_total"
	metricJournalRolledBack = "journal_rolled_back_total"
	metricJournalOrphans    = "journal_orphans_total"

	// Scrubbing and self-healing: Scrub pass durations, frames/bytes
	// verified, latent errors found (corrupt + missing), and how each
	// found error ended — healed by the scrubber, healed inline by a
	// read (read_heal), or unrepairable this pass. quarantine counts
	// bad frames captured under .quarantine/.
	metricScrubNs           = "store_scrub_ns"
	metricScrubBytes        = "scrub_bytes_total"
	metricScrubBlocks       = "scrub_blocks_total"
	metricScrubFound        = "scrub_corrupt_found_total"
	metricScrubHealed       = "scrub_healed_total"
	metricScrubUnrepairable = "scrub_unrepairable_total"
	metricReadHeal          = "read_heal_total"
	metricQuarantine        = "quarantine_total"

	// traceJournal is the event ring recording every journal state
	// transition and recovery outcome.
	traceJournal = "journal"
	// traceHeal records the healing lifecycle: quarantine (bad frame
	// captured), healed (repaired frame written back), unquarantine
	// (reconstruction failed, captured frame restored), unrepairable
	// (a scrub-found error healing could not fix this pass).
	traceHeal = "heal"
)

// storeObs bundles the store's pre-resolved metric handles so hot
// paths never touch the registry's name map. A nil *storeObs disables
// instrumentation entirely (one predictable branch per site) — the
// overhead benchmark gate flips it to price the instrumentation.
type storeObs struct {
	reg *obs.Registry

	getIntact, getDegraded            *obs.Histogram
	readBlockIntact, readBlockDegr    *obs.Histogram
	putNs                             *obs.Histogram
	readAtNs, deleteNs                *obs.Histogram
	repairNs, fsckNs                  *obs.Histogram
	tcRead, tcEncode, tcWrite, tcSwap *obs.Histogram
	scrubNs                           *obs.Histogram

	bytesIn, bytesOut               *obs.Counter
	deletes                         *obs.Counter
	readsDegraded                   *obs.Counter
	repairBlocks, repairTransfers   *obs.Counter
	fsckMissing, fsckCorrupt        *obs.Counter
	tcMoves, tcBytesMoved           *obs.Counter
	tcBlocksRead, tcBlocksWritten   *obs.Counter
	jReplayed, jRolledBack, jOrphan *obs.Counter
	scrubBytes, scrubBlocks         *obs.Counter
	scrubFound, scrubHealed         *obs.Counter
	scrubUnrepairable               *obs.Counter
	readHeal, quarantine            *obs.Counter

	journal *obs.Trace
	heal    *obs.Trace
}

// newStoreObs builds the store's registry and resolves every handle.
func newStoreObs() *storeObs {
	reg := obs.NewRegistry()
	return &storeObs{
		reg:               reg,
		getIntact:         reg.Histogram(metricGetIntactNs),
		getDegraded:       reg.Histogram(metricGetDegradedNs),
		readBlockIntact:   reg.Histogram(metricReadBlockIntactNs),
		readBlockDegr:     reg.Histogram(metricReadBlockDegradedNs),
		putNs:             reg.Histogram(metricPutNs),
		readAtNs:          reg.Histogram(metricReadAtNs),
		deleteNs:          reg.Histogram(metricDeleteNs),
		deletes:           reg.Counter(metricDeletes),
		repairNs:          reg.Histogram(metricRepairNs),
		fsckNs:            reg.Histogram(metricFsckNs),
		tcRead:            reg.Histogram(metricTcReadNs),
		tcEncode:          reg.Histogram(metricTcEncodeNs),
		tcWrite:           reg.Histogram(metricTcWriteNs),
		tcSwap:            reg.Histogram(metricTcSwapNs),
		bytesIn:           reg.Counter(metricBytesIn),
		bytesOut:          reg.Counter(metricBytesOut),
		readsDegraded:     reg.Counter(metricReadsDegraded),
		repairBlocks:      reg.Counter(metricRepairBlocksRestored),
		repairTransfers:   reg.Counter(metricRepairTransfers),
		fsckMissing:       reg.Counter(metricFsckMissing),
		fsckCorrupt:       reg.Counter(metricFsckCorrupt),
		tcMoves:           reg.Counter(metricTcMoves),
		tcBytesMoved:      reg.Counter(metricTcBytesMoved),
		tcBlocksRead:      reg.Counter(metricTcBlocksRead),
		tcBlocksWritten:   reg.Counter(metricTcBlocksWritten),
		jReplayed:         reg.Counter(metricJournalReplayed),
		jRolledBack:       reg.Counter(metricJournalRolledBack),
		jOrphan:           reg.Counter(metricJournalOrphans),
		scrubNs:           reg.Histogram(metricScrubNs),
		scrubBytes:        reg.Counter(metricScrubBytes),
		scrubBlocks:       reg.Counter(metricScrubBlocks),
		scrubFound:        reg.Counter(metricScrubFound),
		scrubHealed:       reg.Counter(metricScrubHealed),
		scrubUnrepairable: reg.Counter(metricScrubUnrepairable),
		readHeal:          reg.Counter(metricReadHeal),
		quarantine:        reg.Counter(metricQuarantine),
		journal:           reg.Trace(traceJournal, obs.DefaultTraceCap),
		heal:              reg.Trace(traceHeal, obs.DefaultTraceCap),
	}
}

// Obs returns the store's metrics registry: every data-plane and
// journal instrument the store maintains, for snapshotting (hdfscli
// stats), live serving (the daemon's -metrics endpoint), or wiring a
// daemon's own metrics into the same namespace.
func (s *Store) Obs() *obs.Registry {
	if s.obs == nil {
		return nil
	}
	return s.obs.reg
}

// journalEvent records one journal state transition in the store's
// event trace: the lifecycle record of what the move machinery
// actually did, complementing the counters.
func (s *Store) journalEvent(typ string, in *TranscodeIntent) {
	if s.obs == nil {
		return
	}
	e := obs.Event{Type: typ, Ext: -1}
	if in != nil {
		e.Name = in.File
		e.Ext = in.Extent
		e.Detail = fmt.Sprintf("%s -> %s", in.From, in.To)
	}
	s.obs.journal.Emit(e)
}
