package core

import (
	"fmt"
)

// Striper splits files into fixed-size blocks, groups blocks into
// stripes of k = code.DataSymbols() blocks (zero-padding the tail, as
// HDFS-RAID does when raiding a file), and encodes or reconstructs each
// stripe independently.
type Striper struct {
	Code      Code
	BlockSize int
}

// NewStriper returns a striper for the given code and block size.
func NewStriper(c Code, blockSize int) (*Striper, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("core: invalid block size %d", blockSize)
	}
	return &Striper{Code: c, BlockSize: blockSize}, nil
}

// StripeCount returns the number of stripes needed for a file of the
// given length.
func (st *Striper) StripeCount(fileLen int) int {
	if fileLen == 0 {
		return 0
	}
	k := st.Code.DataSymbols()
	blocks := (fileLen + st.BlockSize - 1) / st.BlockSize
	return (blocks + k - 1) / k
}

// EncodedStripe is the encoded form of one stripe: the symbol buffers in
// code order (data first, then parities).
type EncodedStripe struct {
	Index   int
	Symbols [][]byte
}

// stripeBlocks assembles stripe i's k data blocks. Blocks fully inside
// data alias it directly (no copy, no allocation); only blocks that
// overhang the file end are materialized — from pool when non-nil —
// and zero-padded. It returns the blocks plus the pooled buffers to
// recycle when the stripe is done.
func (st *Striper) stripeBlocks(data []byte, i int, pool *BlockPool) (blocks, pooled [][]byte) {
	k := st.Code.DataSymbols()
	blocks = make([][]byte, k)
	for j := 0; j < k; j++ {
		off := (i*k + j) * st.BlockSize
		if off+st.BlockSize <= len(data) {
			blocks[j] = data[off : off+st.BlockSize]
			continue
		}
		var b []byte
		if pool != nil {
			b = pool.GetZero()
		} else {
			b = make([]byte, st.BlockSize)
		}
		if off < len(data) {
			copy(b, data[off:])
		}
		blocks[j] = b
		pooled = append(pooled, b)
	}
	return blocks, pooled
}

// EncodeFile splits data into stripes and encodes each, returning the
// stripes in order. The file length must be recorded by the caller to
// strip padding on reconstruction. Data symbols of interior stripes
// alias data — callers that mutate data before consuming the stripes
// must copy first.
func (st *Striper) EncodeFile(data []byte) ([]EncodedStripe, error) {
	count := st.StripeCount(len(data))
	stripes := make([]EncodedStripe, 0, count)
	for i := 0; i < count; i++ {
		blocks, _ := st.stripeBlocks(data, i, nil)
		symbols, err := st.Code.Encode(blocks)
		if err != nil {
			return nil, fmt.Errorf("core: encoding stripe %d: %w", i, err)
		}
		stripes = append(stripes, EncodedStripe{Index: i, Symbols: symbols})
	}
	return stripes, nil
}

// DecodeStripeAppend decodes one stripe's symbol vector and appends its
// data bytes to out, stopping at fileLen total bytes (out may already
// hold earlier stripes). It is the per-stripe core of DecodeFile, split
// out so pooled pipelines can decode a stripe, drain it, and recycle
// the symbol buffers before loading the next.
func (st *Striper) DecodeStripeAppend(out []byte, symbols [][]byte, fileLen int) ([]byte, error) {
	data, err := st.Code.Decode(symbols)
	if err != nil {
		return out, err
	}
	k := st.Code.DataSymbols()
	for j := 0; j < k && len(out) < fileLen; j++ {
		need := fileLen - len(out)
		if need > st.BlockSize {
			need = st.BlockSize
		}
		out = append(out, data[j][:need]...)
	}
	return out, nil
}

// DecodeFile reconstructs the original file of length fileLen from
// (possibly degraded) stripes. Each stripe's symbol vector may have nil
// entries for erased symbols, as long as the pattern is decodable.
func (st *Striper) DecodeFile(stripes []EncodedStripe, fileLen int) ([]byte, error) {
	if want := st.StripeCount(fileLen); len(stripes) != want {
		return nil, fmt.Errorf("core: have %d stripes, want %d for %d bytes", len(stripes), want, fileLen)
	}
	out := make([]byte, 0, fileLen)
	for i, s := range stripes {
		if s.Index != i {
			return nil, fmt.Errorf("core: stripe %d out of order (index %d)", i, s.Index)
		}
		var err error
		out, err = st.DecodeStripeAppend(out, s.Symbols, fileLen)
		if err != nil {
			return nil, fmt.Errorf("core: decoding stripe %d: %w", i, err)
		}
	}
	return out, nil
}
