package core

import (
	"fmt"
)

// Striper splits files into fixed-size blocks, groups blocks into
// stripes of k = code.DataSymbols() blocks (zero-padding the tail, as
// HDFS-RAID does when raiding a file), and encodes or reconstructs each
// stripe independently.
type Striper struct {
	Code      Code
	BlockSize int
}

// NewStriper returns a striper for the given code and block size.
func NewStriper(c Code, blockSize int) (*Striper, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("core: invalid block size %d", blockSize)
	}
	return &Striper{Code: c, BlockSize: blockSize}, nil
}

// StripeCount returns the number of stripes needed for a file of the
// given length.
func (st *Striper) StripeCount(fileLen int) int {
	if fileLen == 0 {
		return 0
	}
	k := st.Code.DataSymbols()
	blocks := (fileLen + st.BlockSize - 1) / st.BlockSize
	return (blocks + k - 1) / k
}

// EncodedStripe is the encoded form of one stripe: the symbol buffers in
// code order (data first, then parities).
type EncodedStripe struct {
	Index   int
	Symbols [][]byte
}

// EncodeFile splits data into stripes and encodes each, returning the
// stripes in order. The file length must be recorded by the caller to
// strip padding on reconstruction.
func (st *Striper) EncodeFile(data []byte) ([]EncodedStripe, error) {
	k := st.Code.DataSymbols()
	count := st.StripeCount(len(data))
	stripes := make([]EncodedStripe, 0, count)
	for i := 0; i < count; i++ {
		blocks := make([][]byte, k)
		for j := 0; j < k; j++ {
			blocks[j] = make([]byte, st.BlockSize)
			off := (i*k + j) * st.BlockSize
			if off < len(data) {
				copy(blocks[j], data[off:])
			}
		}
		symbols, err := st.Code.Encode(blocks)
		if err != nil {
			return nil, fmt.Errorf("core: encoding stripe %d: %w", i, err)
		}
		stripes = append(stripes, EncodedStripe{Index: i, Symbols: symbols})
	}
	return stripes, nil
}

// DecodeFile reconstructs the original file of length fileLen from
// (possibly degraded) stripes. Each stripe's symbol vector may have nil
// entries for erased symbols, as long as the pattern is decodable.
func (st *Striper) DecodeFile(stripes []EncodedStripe, fileLen int) ([]byte, error) {
	if want := st.StripeCount(fileLen); len(stripes) != want {
		return nil, fmt.Errorf("core: have %d stripes, want %d for %d bytes", len(stripes), want, fileLen)
	}
	k := st.Code.DataSymbols()
	out := make([]byte, 0, fileLen)
	for i, s := range stripes {
		if s.Index != i {
			return nil, fmt.Errorf("core: stripe %d out of order (index %d)", i, s.Index)
		}
		data, err := st.Code.Decode(s.Symbols)
		if err != nil {
			return nil, fmt.Errorf("core: decoding stripe %d: %w", i, err)
		}
		for j := 0; j < k && len(out) < fileLen; j++ {
			need := fileLen - len(out)
			if need > st.BlockSize {
				need = st.BlockSize
			}
			out = append(out, data[j][:need]...)
		}
	}
	return out, nil
}
