package core

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/gf256"
)

// Compiled coding plans.
//
// The matrix codes used to pay two per-stripe costs that have nothing
// to do with moving bytes: re-reading coefficients through Matrix.At in
// the inner encode loop, and re-inverting the decode matrix for an
// erasure pattern every stripe even though the pattern is fixed for the
// duration of a failure. This file compiles both away:
//
//   - EncodePlan pre-resolves every non-zero coefficient of an encoding
//     matrix to its split nibble tables (see gf256.Tables) at
//     construction, so encoding a stripe is a flat walk over (table,
//     column) pairs feeding the slice kernels;
//   - MatrixCache memoizes per-erasure-pattern matrices (decode
//     inversions, repair coefficient solves) keyed by the pattern, so
//     degraded reads, repairs and transcodes invert once per pattern
//     instead of once per stripe.

// encTerm is one compiled coefficient: multiply column Col by the
// coefficient resolved into the lo/hi nibble tables.
type encTerm struct {
	col    int
	coeff  byte
	lo, hi *[16]byte
}

// EncodePlan is a compiled matrix-vector product over block buffers:
// row i of the output is sum_j m[i][j]*in[j], with zero coefficients
// skipped at compile time.
type EncodePlan struct {
	cols int
	rows [][]encTerm
}

// CompileEncode compiles a matrix into an encode plan. Rows that are
// entirely zero produce zeroed output blocks.
func CompileEncode(m *gf256.Matrix) *EncodePlan {
	p := &EncodePlan{cols: m.Cols, rows: make([][]encTerm, m.Rows)}
	for i := 0; i < m.Rows; i++ {
		terms := make([]encTerm, 0, m.Cols)
		for j := 0; j < m.Cols; j++ {
			c := m.At(i, j)
			if c == 0 {
				continue
			}
			lo, hi := gf256.Tables(c)
			terms = append(terms, encTerm{col: j, coeff: c, lo: lo, hi: hi})
		}
		p.rows[i] = terms
	}
	return p
}

// Rows returns the number of output blocks the plan produces.
func (p *EncodePlan) Rows() int { return len(p.rows) }

// Apply computes every output row into out, overwriting it completely
// (out buffers need not be zeroed and must not alias the inputs).
func (p *EncodePlan) Apply(in, out [][]byte) {
	if len(in) != p.cols {
		panic(fmt.Sprintf("core: encode plan needs %d inputs, got %d", p.cols, len(in)))
	}
	if len(out) != len(p.rows) {
		panic(fmt.Sprintf("core: encode plan produces %d outputs, got %d buffers", len(p.rows), len(out)))
	}
	for i := range p.rows {
		p.ApplyRow(i, in, out[i])
	}
}

// ApplyRow computes one output row into dst, overwriting it.
func (p *EncodePlan) ApplyRow(i int, in [][]byte, dst []byte) {
	terms := p.rows[i]
	if len(terms) == 0 {
		clear(dst)
		return
	}
	first := terms[0]
	if first.coeff == 1 {
		copy(dst, in[first.col])
	} else {
		gf256.MulSliceTab(first.lo, first.hi, in[first.col], dst)
	}
	for _, t := range terms[1:] {
		if t.coeff == 1 {
			gf256.XorSlice(in[t.col], dst)
		} else {
			gf256.MulAddSliceTab(t.lo, t.hi, in[t.col], dst)
		}
	}
}

// SequenceKey renders an index sequence into a cache key verbatim:
// order- and multiplicity-preserving, dash-joined. Use it when the
// cached artifact depends on the exact sequence (e.g. a SubMatrix
// inverse, whose row order matters), and ErasureKey when only the set
// identity does.
func SequenceKey(idx []int) string {
	var b []byte
	for i, v := range idx {
		if i > 0 {
			b = append(b, '-')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return string(b)
}

// ErasureKey canonicalizes a set of symbol or row indices into a cache
// key: sorted, deduplicated, dash-joined. The input is not modified.
func ErasureKey(idx []int) string {
	sorted := append([]int(nil), idx...)
	sort.Ints(sorted)
	var b []byte
	last := -1
	for i, v := range sorted {
		if i > 0 && v == last {
			continue
		}
		if len(b) > 0 {
			b = append(b, '-')
		}
		b = strconv.AppendInt(b, int64(v), 10)
		last = v
	}
	return string(b)
}

// MatrixCache memoizes erasure-pattern-dependent matrices. The zero
// value is ready to use; it is safe for concurrent Get calls, as
// happens when parallel degraded reads hit different stripes of one
// failure pattern.
type MatrixCache struct {
	mu sync.RWMutex
	m  map[string]*gf256.Matrix
}

// Get returns the matrix cached under key, building it with build on
// the first request. Concurrent first requests may each run build; one
// result wins and is returned to everyone thereafter. Build errors are
// not cached.
func (c *MatrixCache) Get(key string, build func() (*gf256.Matrix, error)) (*gf256.Matrix, error) {
	c.mu.RLock()
	m, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		return m, nil
	}
	built, err := build()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]*gf256.Matrix)
	}
	if won, ok := c.m[key]; ok {
		return won, nil
	}
	c.m[key] = built
	return built, nil
}

// Len returns the number of cached entries, for tests and stats.
func (c *MatrixCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
