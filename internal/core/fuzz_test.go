package core

import (
	"bytes"
	"testing"
)

// FuzzStriperRoundTrip drives the file striper with arbitrary bytes
// and block sizes.
func FuzzStriperRoundTrip(f *testing.F) {
	f.Add([]byte("quick brown fox"), uint8(4))
	f.Add([]byte{}, uint8(1))
	f.Add(bytes.Repeat([]byte{7}, 300), uint8(16))
	f.Fuzz(func(t *testing.T, data []byte, bs uint8) {
		blockSize := int(bs)
		if blockSize == 0 {
			blockSize = 1
		}
		st, err := NewStriper(xorCode{}, blockSize)
		if err != nil {
			t.Fatal(err)
		}
		stripes, err := st.EncodeFile(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.DecodeFile(stripes, len(data))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch: %d bytes at block size %d", len(data), blockSize)
		}
	})
}
