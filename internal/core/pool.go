package core

import (
	"fmt"
	"sync"
)

// BlockPool recycles fixed-size block buffers across the encode,
// decode, read and transcode hot paths. Every buffer handed out has
// exactly the pool's size; Put rejects anything else, so a pooled
// buffer can never smuggle a stale length back into the data plane.
//
// The zero-allocation stripe pipeline threads one pool per block size
// through the striper, the on-disk store and the transcoder: steady
// state, block payloads are recycled instead of re-allocated.
type BlockPool struct {
	size int
	pool sync.Pool
}

// NewBlockPool returns a pool of size-byte blocks.
func NewBlockPool(size int) *BlockPool {
	if size <= 0 {
		panic(fmt.Sprintf("core: invalid block pool size %d", size))
	}
	p := &BlockPool{size: size}
	p.pool.New = func() any {
		b := make([]byte, size)
		return &b
	}
	return p
}

// Size returns the pool's block size.
func (p *BlockPool) Size() int { return p.size }

// Get returns a size-byte buffer with undefined contents. Use GetZero
// when the caller accumulates into the buffer.
func (p *BlockPool) Get() []byte {
	return *p.pool.Get().(*[]byte)
}

// GetZero returns a zeroed size-byte buffer.
func (p *BlockPool) GetZero() []byte {
	b := p.Get()
	clear(b)
	return b
}

// Put recycles a buffer previously returned by Get or GetZero. Buffers
// of the wrong size (or nil) are dropped, so callers may pass through
// blocks that alias caller-owned memory of other lengths without
// corrupting the pool — but must never Put a buffer that is still
// referenced elsewhere.
func (p *BlockPool) Put(b []byte) {
	if len(b) != p.size {
		return
	}
	p.pool.Put(&b)
}
