package core

import (
	"fmt"

	"repro/internal/gf256"
)

// Term is one component of a payload computed at a source node:
// Coeff * symbol, over GF(2^8). For the XOR-only codes every
// coefficient is 1.
type Term struct {
	Symbol int
	Coeff  byte
}

// Transfer moves one block-size payload from node From to node To. The
// payload is the GF(2^8) combination of the listed terms, computed at
// the source from symbols the source holds at execution time ("partial
// parity"). A single-term transfer with coefficient 1 is a plain block
// copy.
type Transfer struct {
	From, To int
	Terms    []Term
}

// IsCopy reports whether the transfer is a plain replica copy of one
// symbol.
func (t Transfer) IsCopy() bool {
	return len(t.Terms) == 1 && t.Terms[0].Coeff == 1
}

// String renders the transfer as "Nfrom->Nto [terms]" for plan dumps.
func (t Transfer) String() string {
	return fmt.Sprintf("N%d->N%d %v", t.From, t.To, t.Terms)
}

// Recovery reconstructs one symbol replica at a node by combining
// received payloads: symbol = sum Coeffs[i] * payload(Sources[i]).
// Sources index into the plan's Transfers. A nil Coeffs means all-ones
// (plain XOR).
type Recovery struct {
	Node    int
	Symbol  int
	Sources []int
	Coeffs  []byte
	// Scratch marks a temporary reconstruction: the symbol is rebuilt at
	// this node only to be forwarded elsewhere and is dropped once the
	// plan completes, keeping the final layout equal to the code's
	// placement.
	Scratch bool
}

// RepairPlan is the full recipe for rebuilding one or more failed nodes
// of a stripe. Transfers may depend on earlier recoveries (a symbol
// rebuilt on a replacement node can then be copied onward), so execution
// resolves dependencies iteratively.
type RepairPlan struct {
	Failed     []int
	Transfers  []Transfer
	Recoveries []Recovery
}

// Bandwidth returns the network cost of the plan in block-units: one
// unit per transfer, the metric the paper calls repair bandwidth.
func (p *RepairPlan) Bandwidth() int { return len(p.Transfers) }

// ReadPlan is the recipe for a degraded (or ordinary) read of one data
// symbol: payloads are delivered to the reader, which combines them as
// symbol = sum Coeffs[i]*payload_i. If Local is true the reader already
// holds a replica and Transfers is empty.
type ReadPlan struct {
	Symbol    int
	Local     bool
	Transfers []Transfer
	Coeffs    []byte // nil = all-ones XOR
}

// Bandwidth returns the network cost of the read in block-units.
// Transfers whose source is the reading node itself are local and free.
func (p *ReadPlan) Bandwidth() int {
	n := 0
	for _, t := range p.Transfers {
		if t.From != t.To {
			n++
		}
	}
	return n
}

// NodeContents models the per-node symbol storage of one stripe:
// contents[v][s] is node v's replica of symbol s.
type NodeContents []map[int][]byte

// MaterializeNodes lays encoded symbols out onto nodes according to the
// code's placement, producing the initial NodeContents of a stripe.
func MaterializeNodes(c Code, symbols [][]byte) NodeContents {
	p := c.Placement()
	contents := make(NodeContents, c.Nodes())
	for v := range contents {
		contents[v] = make(map[int][]byte)
		for _, s := range p.NodeSymbols[v] {
			contents[v][s] = symbols[s]
		}
	}
	return contents
}

// Erase removes all symbols from the given nodes, simulating node loss.
func (nc NodeContents) Erase(nodes ...int) {
	for _, v := range nodes {
		nc[v] = make(map[int][]byte)
	}
}

// Available folds node contents into a symbol vector: avail[s] is any
// surviving replica of s, or nil if all replicas are gone.
func (nc NodeContents) Available(symbols int) [][]byte {
	avail := make([][]byte, symbols)
	for _, node := range nc {
		for s, b := range node {
			if avail[s] == nil {
				avail[s] = b
			}
		}
	}
	return avail
}

// ExecuteRepair runs a repair plan against node contents, verifying that
// every transfer reads only symbols its source actually holds, and
// installing every recovered symbol replica. It returns an error if the
// plan deadlocks (a transfer's source never obtains a needed symbol) or
// is otherwise invalid. blockSize is the stripe's block size.
func ExecuteRepair(nc NodeContents, plan *RepairPlan, blockSize int) error {
	return ExecuteRepairPooled(nc, plan, blockSize, nil)
}

// ExecuteRepairPooled is ExecuteRepair drawing the plan's intermediate
// transfer payloads AND recovered symbol blocks from pool (which must
// match blockSize) — the allocation-free path for bulk repairs that
// execute one plan per stripe. Transient payloads and scratch symbols
// are recycled before returning; recovered symbols installed into nc
// come from the pool, so the caller must Put each one back once it has
// been persisted (and must not reuse nc afterwards). With a nil pool
// every buffer is freshly allocated and nothing is recycled.
func ExecuteRepairPooled(nc NodeContents, plan *RepairPlan, blockSize int, pool *BlockPool) error {
	payloads := make([][]byte, len(plan.Transfers))
	if pool != nil {
		defer func() {
			for _, p := range payloads {
				pool.Put(p)
			}
		}()
	}
	doneT := make([]bool, len(plan.Transfers))
	doneR := make([]bool, len(plan.Recoveries))
	remaining := len(plan.Transfers) + len(plan.Recoveries)

	for remaining > 0 {
		progress := false
		for i, tr := range plan.Transfers {
			if doneT[i] || !sourceReady(nc, tr) {
				continue
			}
			payloads[i] = evalTermsPooled(nc[tr.From], tr.Terms, blockSize, pool)
			doneT[i] = true
			remaining--
			progress = true
		}
		for i, rec := range plan.Recoveries {
			if doneR[i] || !sourcesDelivered(doneT, rec.Sources) {
				continue
			}
			b, err := combinePooled(payloads, rec.Sources, rec.Coeffs, blockSize, pool)
			if err != nil {
				return fmt.Errorf("recovery of symbol %d at node %d: %w", rec.Symbol, rec.Node, err)
			}
			// Verify payload routing: every source transfer must land at
			// the recovering node.
			for _, si := range rec.Sources {
				if plan.Transfers[si].To != rec.Node {
					return fmt.Errorf("recovery at node %d uses transfer %d destined for node %d",
						rec.Node, si, plan.Transfers[si].To)
				}
			}
			nc[rec.Node][rec.Symbol] = b
			doneR[i] = true
			remaining--
			progress = true
		}
		if !progress {
			return fmt.Errorf("repair plan deadlocked with %d steps remaining", remaining)
		}
	}
	for _, rec := range plan.Recoveries {
		if rec.Scratch {
			if pool != nil {
				pool.Put(nc[rec.Node][rec.Symbol])
			}
			delete(nc[rec.Node], rec.Symbol)
		}
	}
	return nil
}

// Merge appends other's transfers and recoveries to p, re-basing
// other's recovery source indices. The failed-node lists are unioned.
func (p *RepairPlan) Merge(other *RepairPlan) {
	offset := len(p.Transfers)
	p.Transfers = append(p.Transfers, other.Transfers...)
	for _, rec := range other.Recoveries {
		shifted := make([]int, len(rec.Sources))
		for i, s := range rec.Sources {
			shifted[i] = s + offset
		}
		rec.Sources = shifted
		p.Recoveries = append(p.Recoveries, rec)
	}
	have := make(map[int]bool, len(p.Failed))
	for _, f := range p.Failed {
		have[f] = true
	}
	for _, f := range other.Failed {
		if !have[f] {
			p.Failed = append(p.Failed, f)
		}
	}
}

// ExecuteRead runs a read plan against node contents and returns the
// data symbol's bytes.
func ExecuteRead(nc NodeContents, plan *ReadPlan, at int, blockSize int) ([]byte, error) {
	if plan.Local {
		if at == OffCluster {
			return nil, fmt.Errorf("read plan claims locality for an off-cluster reader")
		}
		b, ok := nc[at][plan.Symbol]
		if !ok {
			return nil, fmt.Errorf("read plan claims symbol %d local to node %d, which lacks it", plan.Symbol, at)
		}
		return b, nil
	}
	payloads := make([][]byte, len(plan.Transfers))
	for i, tr := range plan.Transfers {
		if !sourceReady(nc, tr) {
			return nil, fmt.Errorf("transfer %d reads symbols missing at node %d", i, tr.From)
		}
		payloads[i] = evalTerms(nc[tr.From], tr.Terms, blockSize)
	}
	idx := make([]int, len(payloads))
	for i := range idx {
		idx[i] = i
	}
	return combine(payloads, idx, plan.Coeffs, blockSize)
}

func sourceReady(nc NodeContents, tr Transfer) bool {
	src := nc[tr.From]
	for _, term := range tr.Terms {
		if _, ok := src[term.Symbol]; !ok {
			return false
		}
	}
	return true
}

func sourcesDelivered(doneT []bool, sources []int) bool {
	for _, s := range sources {
		if !doneT[s] {
			return false
		}
	}
	return true
}

func evalTerms(node map[int][]byte, terms []Term, blockSize int) []byte {
	return evalTermsPooled(node, terms, blockSize, nil)
}

func evalTermsPooled(node map[int][]byte, terms []Term, blockSize int, pool *BlockPool) []byte {
	var out []byte
	if pool != nil {
		out = pool.GetZero()
	} else {
		out = make([]byte, blockSize)
	}
	for _, term := range terms {
		gf256.MulAddSlice(term.Coeff, node[term.Symbol], out)
	}
	return out
}

func combine(payloads [][]byte, sources []int, coeffs []byte, blockSize int) ([]byte, error) {
	return combinePooled(payloads, sources, coeffs, blockSize, nil)
}

func combinePooled(payloads [][]byte, sources []int, coeffs []byte, blockSize int, pool *BlockPool) ([]byte, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("empty source list")
	}
	if coeffs != nil && len(coeffs) != len(sources) {
		return nil, fmt.Errorf("coeffs length %d != sources length %d", len(coeffs), len(sources))
	}
	var out []byte
	if pool != nil {
		out = pool.GetZero()
	} else {
		out = make([]byte, blockSize)
	}
	for i, si := range sources {
		c := byte(1)
		if coeffs != nil {
			c = coeffs[i]
		}
		gf256.MulAddSlice(c, payloads[si], out)
	}
	return out, nil
}
