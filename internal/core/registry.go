package core

import (
	"fmt"
	"sort"
	"sync"
)

// Factory constructs a Code. Factories are registered by the concrete
// code packages in their init functions.
type Factory func() Code

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Factory)
)

// Register makes a code constructor available under the given name.
// Register panics on duplicate names, which indicates a programming
// error during package initialization.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: duplicate code registration %q", name))
	}
	registry[name] = f
}

// New constructs the code registered under name.
func New(name string) (Code, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown code %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names returns the registered code names in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
