package core

import "fmt"

// VerifyPlacement checks the structural invariants every code's layout
// must satisfy:
//
//   - SymbolNodes and NodeSymbols are consistent inverses;
//   - no node stores two replicas of the same symbol;
//   - every symbol has at least one replica;
//   - all node indices are within [0, Nodes()).
//
// It is used by the code packages' tests and by the cluster simulator
// when installing a stripe.
func VerifyPlacement(c Code) error {
	p := c.Placement()
	n := c.Nodes()
	s := c.Symbols()
	if len(p.SymbolNodes) != s {
		return fmt.Errorf("%s: SymbolNodes has %d entries, want %d", c.Name(), len(p.SymbolNodes), s)
	}
	if len(p.NodeSymbols) != n {
		return fmt.Errorf("%s: NodeSymbols has %d entries, want %d", c.Name(), len(p.NodeSymbols), n)
	}
	for sym, nodes := range p.SymbolNodes {
		if len(nodes) == 0 {
			return fmt.Errorf("%s: symbol %d has no replicas", c.Name(), sym)
		}
		seen := make(map[int]bool)
		for _, v := range nodes {
			if v < 0 || v >= n {
				return fmt.Errorf("%s: symbol %d placed on invalid node %d", c.Name(), sym, v)
			}
			if seen[v] {
				return fmt.Errorf("%s: symbol %d has two replicas on node %d", c.Name(), sym, v)
			}
			seen[v] = true
			if !contains(p.NodeSymbols[v], sym) {
				return fmt.Errorf("%s: symbol %d on node %d missing from NodeSymbols", c.Name(), sym, v)
			}
		}
	}
	for v, syms := range p.NodeSymbols {
		seen := make(map[int]bool)
		for _, sym := range syms {
			if sym < 0 || sym >= s {
				return fmt.Errorf("%s: node %d lists invalid symbol %d", c.Name(), v, sym)
			}
			if seen[sym] {
				return fmt.Errorf("%s: node %d lists symbol %d twice", c.Name(), v, sym)
			}
			seen[sym] = true
			if !contains(p.SymbolNodes[sym], v) {
				return fmt.Errorf("%s: node %d holds symbol %d missing from SymbolNodes", c.Name(), v, sym)
			}
		}
	}
	return nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
