package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestEncodeFileConcurrentMatchesSerial(t *testing.T) {
	st, err := NewStriper(xorCode{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, rng.Intn(2000))
		rng.Read(data)
		serial, err := st.EncodeFile(data)
		if err != nil {
			return false
		}
		for _, workers := range []int{0, 1, 3, 8} {
			conc, err := st.EncodeFileConcurrent(data, workers)
			if err != nil {
				return false
			}
			if len(conc) != len(serial) {
				return false
			}
			for i := range serial {
				if conc[i].Index != serial[i].Index {
					return false
				}
				for s := range serial[i].Symbols {
					if !bytes.Equal(conc[i].Symbols[s], serial[i].Symbols[s]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEncodeFileConcurrentEmpty(t *testing.T) {
	st, _ := NewStriper(xorCode{}, 16)
	stripes, err := st.EncodeFileConcurrent(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stripes != nil {
		t.Fatal("empty file produced stripes")
	}
}

// intoXorCode is xorCode with the zero-allocation EncodeInto entry
// point, so EncodeStream's pooled path gets exercised in-package.
type intoXorCode struct{ xorCode }

func (c intoXorCode) EncodeInto(data, out [][]byte) error {
	if _, err := CheckEncodeInput(data, 2); err != nil {
		return err
	}
	out[0], out[1] = data[0], data[1]
	for i := range out[2] {
		out[2][i] = data[0][i] ^ data[1][i]
	}
	return nil
}

// TestEncodeStreamMatchesSerial checks that the streaming pipeline
// delivers exactly the stripes EncodeFile produces, for both the
// Encode fallback and the pooled EncodeInto path, across worker counts
// and ragged file sizes.
func TestEncodeStreamMatchesSerial(t *testing.T) {
	for _, code := range []Code{xorCode{}, intoXorCode{}} {
		st, err := NewStriper(code, 16)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for _, size := range []int{0, 1, 15, 16, 17, 32, 33, 500, 2000} {
			data := make([]byte, size)
			rng.Read(data)
			serial, err := st.EncodeFile(data)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 1, 3, 8} {
				seen := make(map[int][][]byte)
				var mu sync.Mutex
				err := st.EncodeStream(data, workers, nil, func(s EncodedStripe) error {
					// Copy: buffers are recycled after emit returns.
					cp := make([][]byte, len(s.Symbols))
					for i, b := range s.Symbols {
						cp[i] = append([]byte(nil), b...)
					}
					mu.Lock()
					defer mu.Unlock()
					if _, dup := seen[s.Index]; dup {
						return fmt.Errorf("stripe %d emitted twice", s.Index)
					}
					seen[s.Index] = cp
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(seen) != len(serial) {
					t.Fatalf("size %d workers %d: got %d stripes, want %d", size, workers, len(seen), len(serial))
				}
				for _, want := range serial {
					got, ok := seen[want.Index]
					if !ok {
						t.Fatalf("stripe %d never emitted", want.Index)
					}
					for s := range want.Symbols {
						if !bytes.Equal(got[s], want.Symbols[s]) {
							t.Fatalf("size %d workers %d stripe %d symbol %d differs", size, workers, want.Index, s)
						}
					}
				}
			}
		}
	}
}

// TestEncodeStreamEmitError checks that an emit failure cancels the
// stream and surfaces the error.
func TestEncodeStreamEmitError(t *testing.T) {
	st, _ := NewStriper(intoXorCode{}, 8)
	data := make([]byte, 8*2*50) // 50 stripes
	boom := fmt.Errorf("disk full")
	var calls atomic.Int32
	err := st.EncodeStream(data, 4, nil, func(EncodedStripe) error {
		if calls.Add(1) == 3 {
			return boom
		}
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("got %v, want emit error", err)
	}
}

func TestEncodeStreamPoolSizeMismatch(t *testing.T) {
	st, _ := NewStriper(xorCode{}, 8)
	err := st.EncodeStream(make([]byte, 100), 2, NewBlockPool(16), func(EncodedStripe) error { return nil })
	if err == nil {
		t.Fatal("mismatched pool size accepted")
	}
}

func TestEncodeFileConcurrentRoundTrip(t *testing.T) {
	st, _ := NewStriper(xorCode{}, 8)
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 5000)
	rng.Read(data)
	stripes, err := st.EncodeFileConcurrent(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.DecodeFile(stripes, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("concurrent encode round trip failed")
	}
}
