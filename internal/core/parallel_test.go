package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeFileConcurrentMatchesSerial(t *testing.T) {
	st, err := NewStriper(xorCode{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, rng.Intn(2000))
		rng.Read(data)
		serial, err := st.EncodeFile(data)
		if err != nil {
			return false
		}
		for _, workers := range []int{0, 1, 3, 8} {
			conc, err := st.EncodeFileConcurrent(data, workers)
			if err != nil {
				return false
			}
			if len(conc) != len(serial) {
				return false
			}
			for i := range serial {
				if conc[i].Index != serial[i].Index {
					return false
				}
				for s := range serial[i].Symbols {
					if !bytes.Equal(conc[i].Symbols[s], serial[i].Symbols[s]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEncodeFileConcurrentEmpty(t *testing.T) {
	st, _ := NewStriper(xorCode{}, 16)
	stripes, err := st.EncodeFileConcurrent(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stripes != nil {
		t.Fatal("empty file produced stripes")
	}
}

func TestEncodeFileConcurrentRoundTrip(t *testing.T) {
	st, _ := NewStriper(xorCode{}, 8)
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 5000)
	rng.Read(data)
	stripes, err := st.EncodeFileConcurrent(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.DecodeFile(stripes, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("concurrent encode round trip failed")
	}
}
