package core

import (
	"fmt"
	"runtime"
	"sync"
)

// EncodeFileConcurrent is EncodeFile with stripes encoded by a worker
// pool — the encoding-duration lever for RaidNode-style bulk encoding
// jobs, where stripes are independent by construction. workers <= 0
// uses GOMAXPROCS. The result is identical to EncodeFile.
func (st *Striper) EncodeFileConcurrent(data []byte, workers int) ([]EncodedStripe, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	k := st.Code.DataSymbols()
	count := st.StripeCount(len(data))
	if count == 0 {
		return nil, nil
	}
	if workers > count {
		workers = count
	}
	stripes := make([]EncodedStripe, count)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < count; i += workers {
				blocks := make([][]byte, k)
				for j := 0; j < k; j++ {
					blocks[j] = make([]byte, st.BlockSize)
					off := (i*k + j) * st.BlockSize
					if off < len(data) {
						copy(blocks[j], data[off:])
					}
				}
				symbols, err := st.Code.Encode(blocks)
				if err != nil {
					errs[w] = fmt.Errorf("core: encoding stripe %d: %w", i, err)
					return
				}
				stripes[i] = EncodedStripe{Index: i, Symbols: symbols}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return stripes, nil
}
