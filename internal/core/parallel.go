package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// EncodeFileConcurrent is EncodeFile with stripes encoded by a worker
// pool — the encoding-duration lever for RaidNode-style bulk encoding
// jobs, where stripes are independent by construction. workers <= 0
// uses GOMAXPROCS. The result is identical to EncodeFile, including
// its aliasing: data symbols of interior stripes point into data.
func (st *Striper) EncodeFileConcurrent(data []byte, workers int) ([]EncodedStripe, error) {
	count := st.StripeCount(len(data))
	if count == 0 {
		return nil, nil
	}
	workers = clampWorkers(workers, count)
	stripes := make([]EncodedStripe, count)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < count; i += workers {
				blocks, _ := st.stripeBlocks(data, i, nil)
				symbols, err := st.Code.Encode(blocks)
				if err != nil {
					errs[w] = fmt.Errorf("core: encoding stripe %d: %w", i, err)
					return
				}
				stripes[i] = EncodedStripe{Index: i, Symbols: symbols}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return stripes, nil
}

// EncodeStream encodes data stripe by stripe through a bounded worker
// pool and hands each encoded stripe to emit exactly once — the
// zero-allocation pipeline under bulk writes and transcodes, where one
// worker encodes stripe N while another is still writing stripe N-1.
//
// Stripes reach emit out of order (EncodedStripe.Index identifies
// them), and emit is called concurrently from the workers, so it must
// be safe for concurrent use. Symbol buffers are drawn from pool
// (created at the striper's block size when nil) and recycled as soon
// as emit returns, so emit must not retain Symbols; data symbols of
// interior stripes alias data. A non-nil error from emit or any encode
// cancels the stream and is returned after the workers drain.
func (st *Striper) EncodeStream(data []byte, workers int, pool *BlockPool, emit func(EncodedStripe) error) error {
	count := st.StripeCount(len(data))
	if count == 0 {
		return nil
	}
	if pool == nil {
		pool = NewBlockPool(st.BlockSize)
	} else if pool.Size() != st.BlockSize {
		return fmt.Errorf("core: encode stream pool size %d != block size %d", pool.Size(), st.BlockSize)
	}
	workers = clampWorkers(workers, count)

	errs := make([]error, workers)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < count && !failed.Load(); i += workers {
				blocks, pooled := st.stripeBlocks(data, i, pool)
				symbols, release, err := EncodeWith(st.Code, pool, blocks)
				if err != nil {
					err = fmt.Errorf("core: encoding stripe %d: %w", i, err)
				} else {
					err = emit(EncodedStripe{Index: i, Symbols: symbols})
					release()
				}
				for _, b := range pooled {
					pool.Put(b)
				}
				if err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// EncodeStreamFrom is EncodeStream for sources that cannot (or should
// not) materialize the whole file: instead of a data buffer it takes a
// fill callback that produces one stripe's k data blocks on demand.
// Each worker owns k pooled block buffers that it reuses across every
// stripe it encodes, so peak memory is O(workers × stripe), independent
// of the stream length — the property the streaming transcode path is
// built on.
//
// fill is called concurrently from the workers, once per stripe in
// [0, count), with blocks already sized to the pool's block size; it
// must fully overwrite every block (zeroing any tail padding itself)
// and must not retain the slices. emit has the same contract as in
// EncodeStream. A non-nil error from fill, encode or emit cancels the
// stream and is returned after the workers drain.
func (st *Striper) EncodeStreamFrom(count, workers int, pool *BlockPool,
	fill func(stripe int, blocks [][]byte) error, emit func(EncodedStripe) error) error {
	if count == 0 {
		return nil
	}
	if pool == nil {
		pool = NewBlockPool(st.BlockSize)
	} else if pool.Size() != st.BlockSize {
		return fmt.Errorf("core: encode stream pool size %d != block size %d", pool.Size(), st.BlockSize)
	}
	workers = clampWorkers(workers, count)
	k := st.Code.DataSymbols()

	errs := make([]error, workers)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			blocks := make([][]byte, k)
			for j := range blocks {
				blocks[j] = pool.Get()
			}
			defer func() {
				for _, b := range blocks {
					pool.Put(b)
				}
			}()
			for i := w; i < count && !failed.Load(); i += workers {
				err := fill(i, blocks)
				if err != nil {
					err = fmt.Errorf("core: filling stripe %d: %w", i, err)
				} else {
					var symbols [][]byte
					var release func()
					symbols, release, err = EncodeWith(st.Code, pool, blocks)
					if err != nil {
						err = fmt.Errorf("core: encoding stripe %d: %w", i, err)
					} else {
						err = emit(EncodedStripe{Index: i, Symbols: symbols})
						release()
					}
				}
				if err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func clampWorkers(workers, jobs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	return workers
}
