package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gf256"
)

func TestBlockPool(t *testing.T) {
	p := NewBlockPool(64)
	b := p.Get()
	if len(b) != 64 {
		t.Fatalf("Get returned %d bytes, want 64", len(b))
	}
	for i := range b {
		b[i] = 0xAA
	}
	p.Put(b)
	z := p.GetZero()
	if len(z) != 64 {
		t.Fatalf("GetZero returned %d bytes", len(z))
	}
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZero byte %d = %#x, want 0", i, v)
		}
	}
	// Wrong-size and nil Puts must be dropped, not corrupt the pool.
	p.Put(make([]byte, 3))
	p.Put(nil)
	if got := p.Get(); len(got) != 64 {
		t.Fatalf("pool handed out %d bytes after bad Put", len(got))
	}
}

func TestBlockPoolInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBlockPool(0) did not panic")
		}
	}()
	NewBlockPool(0)
}

// TestEncodePlanMatchesMulVec checks the compiled plan against the
// plain matrix-vector product on random matrices, including zero rows
// and coefficient-1 fast paths.
func TestEncodePlanMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.Intn(6), 1+rng.Intn(6)
		m := gf256.NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				switch rng.Intn(4) {
				case 0: // leave zero
				case 1:
					m.Set(i, j, 1)
				default:
					m.Set(i, j, byte(rng.Intn(256)))
				}
			}
		}
		size := 1 + rng.Intn(100)
		in := make([][]byte, cols)
		for j := range in {
			in[j] = make([]byte, size)
			rng.Read(in[j])
		}
		want := m.MulVec(in)
		plan := CompileEncode(m)
		if plan.Rows() != rows {
			t.Fatalf("plan rows %d, want %d", plan.Rows(), rows)
		}
		out := make([][]byte, rows)
		for i := range out {
			out[i] = make([]byte, size)
			rng.Read(out[i]) // dirty: Apply must fully overwrite
		}
		plan.Apply(in, out)
		for i := range want {
			if !bytes.Equal(out[i], want[i]) {
				t.Fatalf("trial %d: plan row %d diverges from MulVec", trial, i)
			}
		}
	}
}

func TestSequenceKey(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, ""},
		{[]int{3}, "3"},
		{[]int{3, 1, 2}, "3-1-2"},
		{[]int{2, 2, 1}, "2-2-1"},
	}
	for _, c := range cases {
		if got := SequenceKey(c.in); got != c.want {
			t.Errorf("SequenceKey(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	// Order must distinguish keys: the cached artifacts (submatrix
	// inverses) are row-order-sensitive.
	if SequenceKey([]int{1, 2}) == SequenceKey([]int{2, 1}) {
		t.Error("SequenceKey collapsed distinct orderings")
	}
}

func TestErasureKey(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, ""},
		{[]int{3}, "3"},
		{[]int{3, 1, 2}, "1-2-3"},
		{[]int{2, 2, 1}, "1-2"},
		{[]int{10, 2}, "2-10"},
	}
	for _, c := range cases {
		if got := ErasureKey(c.in); got != c.want {
			t.Errorf("ErasureKey(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	// The input must not be reordered in place.
	in := []int{5, 1}
	ErasureKey(in)
	if in[0] != 5 || in[1] != 1 {
		t.Error("ErasureKey mutated its input")
	}
}

// TestMatrixCacheConcurrent hammers one cache from many goroutines
// with overlapping keys — the shape of parallel degraded reads under
// distinct erasure patterns — and checks every caller sees the right
// matrix for its key.
func TestMatrixCacheConcurrent(t *testing.T) {
	var cache MatrixCache
	const workers = 8
	const patterns = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				pat := (w + iter) % patterns
				key := ErasureKey([]int{pat})
				m, err := cache.Get(key, func() (*gf256.Matrix, error) {
					mm := gf256.NewMatrix(1, 1)
					mm.Set(0, 0, byte(pat+1))
					return mm, nil
				})
				if err != nil {
					errs <- err
					return
				}
				if m.At(0, 0) != byte(pat+1) {
					errs <- fmt.Errorf("key %q returned matrix for %d", key, m.At(0, 0)-1)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cache.Len() != patterns {
		t.Fatalf("cache has %d entries, want %d", cache.Len(), patterns)
	}
}

func TestMatrixCacheBuildErrorNotCached(t *testing.T) {
	var cache MatrixCache
	boom := fmt.Errorf("boom")
	if _, err := cache.Get("k", func() (*gf256.Matrix, error) { return nil, boom }); err != boom {
		t.Fatalf("got %v, want build error", err)
	}
	if cache.Len() != 0 {
		t.Fatal("error result was cached")
	}
	m, err := cache.Get("k", func() (*gf256.Matrix, error) { return gf256.Identity(2), nil })
	if err != nil || m == nil {
		t.Fatalf("retry after error failed: %v", err)
	}
}
