package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// xorCode is a minimal in-package test code: 2 data symbols + 1 XOR
// parity, each on its own node.
type xorCode struct{}

func (xorCode) Name() string        { return "xor-test" }
func (xorCode) DataSymbols() int    { return 2 }
func (xorCode) Symbols() int        { return 3 }
func (xorCode) Nodes() int          { return 3 }
func (xorCode) FaultTolerance() int { return 1 }

func (xorCode) Placement() Placement {
	return PlacementFromSymbolNodes([][]int{{0}, {1}, {2}}, 3)
}

func (xorCode) Encode(data [][]byte) ([][]byte, error) {
	if _, err := CheckEncodeInput(data, 2); err != nil {
		return nil, err
	}
	p := make([]byte, len(data[0]))
	for i := range p {
		p[i] = data[0][i] ^ data[1][i]
	}
	return [][]byte{data[0], data[1], p}, nil
}

func (c xorCode) Decode(avail [][]byte) ([][]byte, error) {
	missing := -1
	for s, b := range avail {
		if b == nil {
			if missing >= 0 {
				return nil, &ErasureError{Code: c.Name(), Missing: []int{missing, s}, Reason: "two lost"}
			}
			missing = s
		}
	}
	out := [][]byte{avail[0], avail[1]}
	if missing >= 0 && missing < 2 {
		other := 1 - missing
		rec := make([]byte, len(avail[2]))
		for i := range rec {
			rec[i] = avail[other][i] ^ avail[2][i]
		}
		out[missing] = rec
	}
	return out, nil
}

func TestCheckEncodeInput(t *testing.T) {
	if _, err := CheckEncodeInput([][]byte{{1}, {2}}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := CheckEncodeInput([][]byte{{1}}, 2); err == nil {
		t.Fatal("accepted wrong count")
	}
	if _, err := CheckEncodeInput([][]byte{{1}, nil}, 2); err == nil {
		t.Fatal("accepted nil block")
	}
	if _, err := CheckEncodeInput([][]byte{{1}, {2, 3}}, 2); !errors.Is(err, ErrBlockSize) {
		t.Fatalf("want ErrBlockSize, got %v", err)
	}
	if _, err := CheckEncodeInput([][]byte{nil, {1}}, 2); err == nil {
		t.Fatal("accepted leading nil block")
	}
}

func TestStorageOverhead(t *testing.T) {
	if so := StorageOverhead(xorCode{}); so != 1.5 {
		t.Fatalf("overhead = %v, want 1.5", so)
	}
}

func TestVerifyPlacementAcceptsValid(t *testing.T) {
	if err := VerifyPlacement(xorCode{}); err != nil {
		t.Fatal(err)
	}
}

// badPlacement wraps xorCode with a corrupted placement.
type badPlacement struct {
	xorCode
	p Placement
}

func (b badPlacement) Placement() Placement { return b.p }

func TestVerifyPlacementRejectsBad(t *testing.T) {
	cases := map[string]Placement{
		"wrong symbol count": {SymbolNodes: [][]int{{0}}, NodeSymbols: [][]int{{0}, {}, {}}},
		"no replicas":        {SymbolNodes: [][]int{{0}, {}, {2}}, NodeSymbols: [][]int{{0}, {}, {2}}},
		"invalid node":       {SymbolNodes: [][]int{{0}, {7}, {2}}, NodeSymbols: [][]int{{0}, {}, {2}}},
		"double replica":     {SymbolNodes: [][]int{{0, 0}, {1}, {2}}, NodeSymbols: [][]int{{0, 0}, {1}, {2}}},
		"inconsistent":       {SymbolNodes: [][]int{{0}, {1}, {2}}, NodeSymbols: [][]int{{0}, {2}, {1}}},
	}
	for name, p := range cases {
		if err := VerifyPlacement(badPlacement{p: p}); err == nil {
			t.Errorf("%s: VerifyPlacement accepted corrupt placement", name)
		}
	}
}

func TestPlacementHelpers(t *testing.T) {
	p := PlacementFromSymbolNodes([][]int{{0, 1}, {1, 2}}, 3)
	if p.TotalBlocks() != 4 {
		t.Fatalf("TotalBlocks = %d, want 4", p.TotalBlocks())
	}
	if !p.Holds(1, 0) || !p.Holds(1, 1) || p.Holds(0, 1) {
		t.Fatal("Holds wrong")
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := New("no-such-code"); err == nil {
		t.Fatal("New accepted unknown code")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	Register("core-test-dup", func() Code { return xorCode{} })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("core-test-dup", func() Code { return xorCode{} })
}

func TestExecuteRepairDetectsDeadlock(t *testing.T) {
	c := xorCode{}
	symbols, _ := c.Encode([][]byte{{1, 2}, {3, 4}})
	nc := MaterializeNodes(c, symbols)
	nc.Erase(0)
	// A transfer sourcing the erased symbol from the erased node can
	// never run.
	plan := &RepairPlan{
		Failed:    []int{0},
		Transfers: []Transfer{{From: 0, To: 1, Terms: []Term{{Symbol: 0, Coeff: 1}}}},
	}
	if err := ExecuteRepair(nc, plan, 2); err == nil {
		t.Fatal("deadlocked plan executed successfully")
	}
}

func TestExecuteRepairRejectsMisroutedRecovery(t *testing.T) {
	c := xorCode{}
	symbols, _ := c.Encode([][]byte{{1, 2}, {3, 4}})
	nc := MaterializeNodes(c, symbols)
	nc.Erase(0)
	plan := &RepairPlan{
		Failed:    []int{0},
		Transfers: []Transfer{{From: 1, To: 2, Terms: []Term{{Symbol: 1, Coeff: 1}}}},
		// Recovery at node 0 citing a transfer that went to node 2.
		Recoveries: []Recovery{{Node: 0, Symbol: 0, Sources: []int{0}}},
	}
	if err := ExecuteRepair(nc, plan, 2); err == nil {
		t.Fatal("misrouted recovery accepted")
	}
}

func TestExecuteRepairScratchRemoved(t *testing.T) {
	c := xorCode{}
	symbols, _ := c.Encode([][]byte{{1, 2}, {3, 4}})
	nc := MaterializeNodes(c, symbols)
	nc.Erase(0)
	plan := &RepairPlan{
		Failed: []int{0},
		Transfers: []Transfer{
			{From: 1, To: 2, Terms: []Term{{Symbol: 1, Coeff: 1}}},                        // stage sym1 at node 2
			{From: 2, To: 0, Terms: []Term{{Symbol: 1, Coeff: 1}, {Symbol: 2, Coeff: 1}}}, // partial
		},
		Recoveries: []Recovery{
			{Node: 2, Symbol: 1, Sources: []int{0}, Scratch: true},
			{Node: 0, Symbol: 0, Sources: []int{1}},
		},
	}
	if err := ExecuteRepair(nc, plan, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := nc[2][1]; ok {
		t.Fatal("scratch symbol not removed")
	}
	if !bytes.Equal(nc[0][0], symbols[0]) {
		t.Fatal("symbol 0 not restored")
	}
}

func TestRepairPlanMergeRebasesSources(t *testing.T) {
	p1 := &RepairPlan{
		Failed:     []int{0},
		Transfers:  []Transfer{{From: 1, To: 0}},
		Recoveries: []Recovery{{Node: 0, Symbol: 0, Sources: []int{0}}},
	}
	p2 := &RepairPlan{
		Failed:     []int{0, 2},
		Transfers:  []Transfer{{From: 1, To: 2}},
		Recoveries: []Recovery{{Node: 2, Symbol: 2, Sources: []int{0}}},
	}
	p1.Merge(p2)
	if len(p1.Transfers) != 2 || len(p1.Recoveries) != 2 {
		t.Fatal("merge lost steps")
	}
	if p1.Recoveries[1].Sources[0] != 1 {
		t.Fatalf("merge did not rebase sources: %v", p1.Recoveries[1].Sources)
	}
	if len(p1.Failed) != 2 {
		t.Fatalf("merge failed-union wrong: %v", p1.Failed)
	}
}

func TestReadPlanBandwidthSkipsLoopback(t *testing.T) {
	p := &ReadPlan{Transfers: []Transfer{
		{From: 1, To: 1},
		{From: 2, To: 1},
	}}
	if p.Bandwidth() != 1 {
		t.Fatalf("bandwidth = %d, want 1", p.Bandwidth())
	}
}

func TestExecuteReadLocalValidation(t *testing.T) {
	c := xorCode{}
	symbols, _ := c.Encode([][]byte{{1, 2}, {3, 4}})
	nc := MaterializeNodes(c, symbols)
	if _, err := ExecuteRead(nc, &ReadPlan{Symbol: 0, Local: true}, OffCluster, 2); err == nil {
		t.Fatal("local read accepted for off-cluster reader")
	}
	if _, err := ExecuteRead(nc, &ReadPlan{Symbol: 0, Local: true}, 1, 2); err == nil {
		t.Fatal("local read accepted at node lacking the symbol")
	}
	got, err := ExecuteRead(nc, &ReadPlan{Symbol: 0, Local: true}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, symbols[0]) {
		t.Fatal("local read wrong")
	}
}

func TestStriperRoundTrip(t *testing.T) {
	c := xorCode{}
	st, err := NewStriper(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100)
		data := make([]byte, n)
		rng.Read(data)
		stripes, err := st.EncodeFile(data)
		if err != nil {
			return false
		}
		got, err := st.DecodeFile(stripes, n)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStriperDegradedRoundTrip(t *testing.T) {
	c := xorCode{}
	st, _ := NewStriper(c, 4)
	data := []byte("the quick brown fox jumps over the lazy dog")
	stripes, err := st.EncodeFile(data)
	if err != nil {
		t.Fatal(err)
	}
	// Erase one symbol per stripe, alternating.
	for i := range stripes {
		stripes[i].Symbols[i%3] = nil
	}
	got, err := st.DecodeFile(stripes, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("degraded decode = %q", got)
	}
}

func TestStriperCounts(t *testing.T) {
	c := xorCode{}
	st, _ := NewStriper(c, 4)
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {4, 1}, {5, 1}, {8, 1}, {9, 2}, {16, 2}, {17, 3},
	}
	for _, tc := range cases {
		if got := st.StripeCount(tc.n); got != tc.want {
			t.Errorf("StripeCount(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestStriperErrors(t *testing.T) {
	if _, err := NewStriper(xorCode{}, 0); err == nil {
		t.Fatal("NewStriper accepted zero block size")
	}
	st, _ := NewStriper(xorCode{}, 4)
	if _, err := st.DecodeFile(nil, 100); err == nil {
		t.Fatal("DecodeFile accepted missing stripes")
	}
	stripes, _ := st.EncodeFile(make([]byte, 20))
	stripes[0].Index = 5
	if _, err := st.DecodeFile(stripes, 20); err == nil {
		t.Fatal("DecodeFile accepted out-of-order stripes")
	}
}

func TestErasureErrorMessage(t *testing.T) {
	e := &ErasureError{Code: "pentagon", Missing: []int{1, 2}, Reason: "why"}
	if e.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestNodeContentsAvailable(t *testing.T) {
	c := xorCode{}
	symbols, _ := c.Encode([][]byte{{1, 2}, {3, 4}})
	nc := MaterializeNodes(c, symbols)
	nc.Erase(1)
	avail := nc.Available(3)
	if avail[0] == nil || avail[1] != nil || avail[2] == nil {
		t.Fatalf("Available wrong: %v", avail)
	}
}
