// Package core defines the coding-scheme abstraction this repository is
// built around, together with repair and degraded-read planning, a plan
// executor used both by tests and by the cluster simulator, a code
// registry, and the file striper.
//
// The central idea of the paper is a family of erasure codes with
// inherent double replication: every stored symbol of a stripe exists as
// two exact replicas on two distinct nodes (except designated
// single-copy global parities), so MapReduce tasks read plain replicas
// exactly as under 2-way replication, while the code structure provides
// reliability close to or better than 3-way replication and cheap
// repairs through partial parities.
package core

import (
	"errors"
	"fmt"
)

// Code is a coding scheme applied independently to each stripe of a
// file. A stripe holds DataSymbols() application blocks; Encode expands
// them to Symbols() stored symbols (the data symbols first, parities
// after), and Placement() lays the symbol replicas out over Nodes()
// distinct nodes.
type Code interface {
	// Name identifies the scheme, e.g. "pentagon" or "3-rep".
	Name() string
	// DataSymbols returns k, the number of data blocks per stripe.
	DataSymbols() int
	// Symbols returns the number of distinct stored symbols per stripe
	// (data blocks plus parity blocks, each counted once regardless of
	// replication).
	Symbols() int
	// Nodes returns the code length n: the number of distinct nodes a
	// stripe spans.
	Nodes() int
	// Placement returns the replica layout of one stripe.
	Placement() Placement
	// FaultTolerance returns the largest f such that the stripe is
	// recoverable after ANY f node erasures.
	FaultTolerance() int
	// Encode expands k equal-size data blocks into the full symbol
	// vector. The first k outputs alias or equal the inputs (the codes
	// are systematic).
	Encode(data [][]byte) ([][]byte, error)
	// Decode reconstructs the k data blocks from the surviving symbols.
	// avail has length Symbols(); nil entries are erased. Decode fails
	// with an *ErasureError if the pattern is unrecoverable.
	Decode(avail [][]byte) ([][]byte, error)
}

// IntoEncoder is implemented by codes whose Encode can write parity
// symbols into caller-provided buffers — the zero-allocation entry
// point of the pooled stripe pipeline. out must have Symbols() entries:
// EncodeInto sets the first DataSymbols() entries to the data blocks
// themselves (systematic codes alias, never copy) and fully overwrites
// the remaining entries, which must be non-nil buffers of the data
// block size that do not alias the data.
type IntoEncoder interface {
	EncodeInto(data, out [][]byte) error
}

// EncodeWith encodes a stripe through EncodeInto when the code supports
// it, drawing parity buffers from pool; otherwise it falls back to
// Encode. The returned release function recycles the pooled parity
// buffers (it is a no-op after the fallback) — call it once the symbol
// buffers are no longer referenced.
func EncodeWith(c Code, pool *BlockPool, data [][]byte) (symbols [][]byte, release func(), err error) {
	ie, ok := c.(IntoEncoder)
	if !ok || pool == nil {
		out, err := c.Encode(data)
		return out, func() {}, err
	}
	k, n := c.DataSymbols(), c.Symbols()
	out := make([][]byte, n)
	for i := k; i < n; i++ {
		out[i] = pool.Get()
	}
	if err := ie.EncodeInto(data, out); err != nil {
		for i := k; i < n; i++ {
			pool.Put(out[i])
		}
		return nil, func() {}, err
	}
	return out, func() {
		for i := k; i < n; i++ {
			pool.Put(out[i])
		}
	}, nil
}

// RepairPlanner is implemented by codes that can plan the exact network
// transfers needed to rebuild failed nodes, including repair-by-transfer
// copies and partial-parity aggregation.
type RepairPlanner interface {
	// PlanRepair returns a plan restoring every symbol replica stored on
	// the failed nodes. The replacement node for failed node i is node i
	// itself (in-place rebuild).
	PlanRepair(failed []int) (*RepairPlan, error)
}

// ReadPlanner is implemented by codes that can plan degraded reads: how
// a map task obtains a data symbol when some nodes are down.
type ReadPlanner interface {
	// PlanRead plans delivery of the given data symbol to node at
	// (at == OffCluster for an external reader) while the listed nodes
	// are down. The plan minimizes network block transfers.
	PlanRead(symbol int, down []int, at int) (*ReadPlan, error)
}

// OffCluster is the pseudo-node for readers outside the stripe's nodes.
const OffCluster = -1

// Placement describes where the replicas of each symbol of a stripe
// live, in stripe-local node coordinates 0..Nodes()-1.
type Placement struct {
	// SymbolNodes[s] lists the nodes holding a replica of symbol s.
	SymbolNodes [][]int
	// NodeSymbols[v] lists the symbols stored on node v.
	NodeSymbols [][]int
}

// PlacementFromSymbolNodes derives the inverse NodeSymbols map.
func PlacementFromSymbolNodes(symbolNodes [][]int, nodes int) Placement {
	ns := make([][]int, nodes)
	for s, vs := range symbolNodes {
		for _, v := range vs {
			ns[v] = append(ns[v], s)
		}
	}
	return Placement{SymbolNodes: symbolNodes, NodeSymbols: ns}
}

// TotalBlocks returns the number of physical blocks a stripe occupies
// (symbol replicas summed).
func (p Placement) TotalBlocks() int {
	n := 0
	for _, vs := range p.SymbolNodes {
		n += len(vs)
	}
	return n
}

// Holds reports whether node v stores a replica of symbol s.
func (p Placement) Holds(v, s int) bool {
	for _, x := range p.NodeSymbols[v] {
		if x == s {
			return true
		}
	}
	return false
}

// StorageOverhead returns the physical-blocks-per-data-block ratio of a
// code, the "storage overhead" column of Table 1.
func StorageOverhead(c Code) float64 {
	return float64(c.Placement().TotalBlocks()) / float64(c.DataSymbols())
}

// ErasureError reports an unrecoverable erasure pattern.
type ErasureError struct {
	Code    string
	Missing []int // erased symbols or nodes, per context
	Reason  string
}

// Error formats the erasure pattern and why it is unrecoverable.
func (e *ErasureError) Error() string {
	return fmt.Sprintf("%s: unrecoverable erasure %v: %s", e.Code, e.Missing, e.Reason)
}

// ErrBlockSize is returned when Encode/Decode inputs disagree on size.
var ErrBlockSize = errors.New("core: blocks have differing sizes")

// CheckEncodeInput validates that data has exactly k equal-size non-nil
// blocks, returning the block size.
func CheckEncodeInput(data [][]byte, k int) (int, error) {
	if len(data) != k {
		return 0, fmt.Errorf("core: encode needs %d data blocks, got %d", k, len(data))
	}
	if data[0] == nil {
		return 0, errors.New("core: nil data block")
	}
	size := len(data[0])
	for _, b := range data {
		if b == nil {
			return 0, errors.New("core: nil data block")
		}
		if len(b) != size {
			return 0, ErrBlockSize
		}
	}
	return size, nil
}
