package rs

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/block"
	"repro/internal/core"
)

const testBlockSize = 64

func encoded(t testing.TB, c *Code, seed int64) ([][]byte, [][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([][]byte, c.DataSymbols())
	for i := range data {
		data[i] = make([]byte, testBlockSize)
		rng.Read(data[i])
	}
	symbols, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	return data, symbols
}

func TestShape(t *testing.T) {
	c := New(14, 10)
	if c.Name() != "(14,10) RS" {
		t.Errorf("name = %q", c.Name())
	}
	if c.DataSymbols() != 10 || c.Symbols() != 14 || c.Nodes() != 14 {
		t.Error("bad shape")
	}
	if c.FaultTolerance() != 4 {
		t.Errorf("tolerance = %d", c.FaultTolerance())
	}
	if so := core.StorageOverhead(c); so != 1.4 {
		t.Errorf("overhead = %v, want 1.4", so)
	}
	if err := core.VerifyPlacement(c); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	for _, p := range [][2]int{{5, 5}, {4, 0}, {300, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", p[0], p[1])
				}
			}()
			New(p[0], p[1])
		}()
	}
}

func TestSystematic(t *testing.T) {
	c := New(9, 6)
	data, symbols := encoded(t, c, 1)
	for i := range data {
		if !block.Equal(symbols[i], data[i]) {
			t.Fatalf("not systematic at %d", i)
		}
	}
}

// TestDecodeAllFourErasures exhaustively decodes the (9,6) code from
// every erasure pattern up to the fault tolerance of 3.
func TestDecodeAllErasurePatterns(t *testing.T) {
	c := New(9, 6)
	data, symbols := encoded(t, c, 2)
	for f1 := 0; f1 < 9; f1++ {
		for f2 := f1 + 1; f2 < 9; f2++ {
			for f3 := f2 + 1; f3 < 9; f3++ {
				avail := block.CloneAll(symbols)
				avail[f1], avail[f2], avail[f3] = nil, nil, nil
				decoded, err := c.Decode(avail)
				if err != nil {
					t.Fatalf("decode after %d,%d,%d: %v", f1, f2, f3, err)
				}
				for i := range data {
					if !block.Equal(decoded[i], data[i]) {
						t.Fatalf("block %d wrong after %d,%d,%d", i, f1, f2, f3)
					}
				}
			}
		}
	}
}

func TestDecodeBeyondToleranceFails(t *testing.T) {
	c := New(9, 6)
	_, symbols := encoded(t, c, 3)
	avail := block.CloneAll(symbols)
	for s := 0; s < 4; s++ {
		avail[s] = nil
	}
	if _, err := c.Decode(avail); err == nil {
		t.Fatal("decoded with only 5 of 6 needed symbols")
	}
}

func TestDecodeProperty(t *testing.T) {
	c := New(14, 10)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([][]byte, 10)
		for i := range data {
			data[i] = make([]byte, 32)
			rng.Read(data[i])
		}
		symbols, err := c.Encode(data)
		if err != nil {
			return false
		}
		avail := block.CloneAll(symbols)
		for _, s := range rng.Perm(14)[:4] {
			avail[s] = nil
		}
		decoded, err := c.Decode(avail)
		if err != nil {
			return false
		}
		for i := range data {
			if !block.Equal(decoded[i], data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRepairCostsKTransfers verifies the intro's motivation: a single
// RS node repair moves k blocks (10 for (14,10)), versus the
// pentagon's pure-copy repair.
func TestRepairCostsKTransfers(t *testing.T) {
	c := New(14, 10)
	_, symbols := encoded(t, c, 4)
	for f := 0; f < 14; f++ {
		plan, err := c.PlanRepair([]int{f})
		if err != nil {
			t.Fatal(err)
		}
		if plan.Bandwidth() > 10 || plan.Bandwidth() < 9 {
			// Some coefficients can be zero, shaving the odd transfer.
			t.Fatalf("single repair bandwidth = %d, want ~k = 10", plan.Bandwidth())
		}
		nc := core.MaterializeNodes(c, symbols)
		nc.Erase(f)
		if err := core.ExecuteRepair(nc, plan, testBlockSize); err != nil {
			t.Fatalf("repair of %d: %v", f, err)
		}
		if !block.Equal(nc[f][f], symbols[f]) {
			t.Fatalf("node %d not restored", f)
		}
	}
}

func TestRepairMaxErasures(t *testing.T) {
	c := New(9, 6)
	_, symbols := encoded(t, c, 5)
	plan, err := c.PlanRepair([]int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	nc := core.MaterializeNodes(c, symbols)
	nc.Erase(1, 4, 8)
	if err := core.ExecuteRepair(nc, plan, testBlockSize); err != nil {
		t.Fatal(err)
	}
	for _, f := range []int{1, 4, 8} {
		if !block.Equal(nc[f][f], symbols[f]) {
			t.Fatalf("node %d not restored", f)
		}
	}
	if _, err := c.PlanRepair([]int{0, 1, 2, 3}); err == nil {
		t.Fatal("accepted repair beyond tolerance")
	}
	if _, err := c.PlanRepair([]int{0, 0}); err == nil {
		t.Fatal("accepted duplicate")
	}
	if _, err := c.PlanRepair([]int{9}); err == nil {
		t.Fatal("accepted invalid node")
	}
}

func TestReadPaths(t *testing.T) {
	c := New(9, 6)
	_, symbols := encoded(t, c, 6)
	nc := core.MaterializeNodes(c, symbols)

	plan, err := c.PlanRead(2, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Local {
		t.Fatal("read at holder not local")
	}
	plan, err = c.PlanRead(2, nil, core.OffCluster)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bandwidth() != 1 {
		t.Fatalf("remote read bandwidth = %d", plan.Bandwidth())
	}
	// Degraded read: node 2 down -> k-ish transfers.
	nc.Erase(2)
	plan, err = c.PlanRead(2, []int{2}, core.OffCluster)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bandwidth() < 5 || plan.Bandwidth() > 6 {
		t.Fatalf("degraded read bandwidth = %d, want ~k = 6", plan.Bandwidth())
	}
	got, err := core.ExecuteRead(nc, plan, core.OffCluster, testBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if !block.Equal(got, symbols[2]) {
		t.Fatal("degraded read wrong")
	}
	if _, err := c.PlanRead(8, nil, 0); err == nil {
		t.Fatal("accepted a parity symbol")
	}
	if _, err := c.PlanRead(0, []int{0, 1, 2, 3}, core.OffCluster); err == nil {
		t.Fatal("read succeeded beyond tolerance")
	}
}

func TestRegistry(t *testing.T) {
	for name, k := range map[string]int{"rs-14-10": 10, "rs-9-6": 6} {
		c, err := core.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.DataSymbols() != k {
			t.Fatalf("%s: k = %d", name, c.DataSymbols())
		}
	}
}

// TestRSVsPentagonRepairBill pins the comparison that motivates the
// paper: RS single-node repair moves ~k blocks to restore one block,
// the pentagon moves one block per block restored.
func TestRSVsPentagonRepairBill(t *testing.T) {
	rsPlan, err := New(14, 10).PlanRepair([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	perBlockRS := float64(rsPlan.Bandwidth()) / 1.0
	if perBlockRS < 9 {
		t.Fatalf("RS repair bill %v blocks per block, want ~10", perBlockRS)
	}
}

// TestConcurrentDecodeDistinctPatterns decodes one encoded stripe set
// under many different erasure patterns from many goroutines at once.
// Every pattern shares the code's per-pattern inverse cache, so this is
// the correctness (and, under -race, the safety) test for the cached
// decode plans.
func TestConcurrentDecodeDistinctPatterns(t *testing.T) {
	c := New(9, 6)
	data, symbols := encoded(t, c, 77)
	// All 2-of-9 erasure patterns (within tolerance 3).
	var patterns [][]int
	for a := 0; a < c.Symbols(); a++ {
		for b := a + 1; b < c.Symbols(); b++ {
			patterns = append(patterns, []int{a, b})
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(patterns))
	for _, pat := range patterns {
		pat := pat
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				avail := append([][]byte(nil), symbols...)
				for _, s := range pat {
					avail[s] = nil
				}
				got, err := c.Decode(avail)
				if err != nil {
					errs <- fmt.Errorf("pattern %v: %v", pat, err)
					return
				}
				for i := range data {
					if !block.Equal(got[i], data[i]) {
						errs <- fmt.Errorf("pattern %v: data block %d wrong", pat, i)
						return
					}
				}
				// Exercise the shared cache from the planner side too.
				if _, err := c.PlanRead(0, pat, core.OffCluster); err != nil {
					errs <- fmt.Errorf("pattern %v: PlanRead: %v", pat, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.inverses.Len() == 0 {
		t.Fatal("decode-plan cache never populated")
	}
}
