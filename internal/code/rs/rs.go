// Package rs implements systematic (n, k) Reed-Solomon codes over
// GF(2^8), the storage-efficient erasure codes the paper's introduction
// discusses as Facebook's HDFS-RAID choice for cold data (Borthakur et
// al., Sathiamoorthy et al.).
//
// RS codes store a single copy of each of n symbols on n distinct
// nodes (no inherent replication), tolerate any n-k erasures, and — the
// property the paper's codes are designed to avoid — pay k whole-block
// transfers to repair any single lost block and offer no data locality
// benefits for MapReduce. They are included as the cold-data baseline:
// registered instances are Facebook's (14,10) and classic (9,6).
package rs

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gf256"
)

// Code is a systematic (n, k) Reed-Solomon code.
type Code struct {
	n, k      int
	enc       *gf256.Matrix    // n x k systematic encoding matrix
	parity    *core.EncodePlan // compiled parity rows k..n-1 of enc
	placement core.Placement

	// inverses caches the inverted k x k decode submatrix per
	// survivor-row pattern, shared by Decode, PlanRepair and PlanRead:
	// a fixed failure pattern inverts once, not once per stripe.
	inverses core.MatrixCache
}

var (
	_ core.Code          = (*Code)(nil)
	_ core.IntoEncoder   = (*Code)(nil)
	_ core.RepairPlanner = (*Code)(nil)
	_ core.ReadPlanner   = (*Code)(nil)
)

// New returns the systematic (n, k) RS code. It panics if the
// parameters are out of the GF(2^8) range or k >= n.
func New(n, k int) *Code {
	if k < 1 || n <= k || n > 255 {
		panic(fmt.Sprintf("rs: invalid parameters (%d, %d)", n, k))
	}
	v := gf256.Vandermonde(n, k)
	topRows := make([]int, k)
	for i := range topRows {
		topRows[i] = i
	}
	topInv, err := v.SubMatrix(topRows).Invert()
	if err != nil {
		panic("rs: Vandermonde top square not invertible")
	}
	enc := v.Mul(topInv)
	symbolNodes := make([][]int, n)
	for s := range symbolNodes {
		symbolNodes[s] = []int{s}
	}
	parityRows := make([]int, 0, n-k)
	for r := k; r < n; r++ {
		parityRows = append(parityRows, r)
	}
	return &Code{
		n: n, k: k, enc: enc,
		parity:    core.CompileEncode(enc.SubMatrix(parityRows)),
		placement: core.PlacementFromSymbolNodes(symbolNodes, n),
	}
}

func init() {
	core.Register("rs-14-10", func() core.Code { return New(14, 10) })
	core.Register("rs-9-6", func() core.Code { return New(9, 6) })
}

// Name returns "(n,k) RS".
func (c *Code) Name() string { return fmt.Sprintf("(%d,%d) RS", c.n, c.k) }

// DataSymbols returns k.
func (c *Code) DataSymbols() int { return c.k }

// Symbols returns n.
func (c *Code) Symbols() int { return c.n }

// Nodes returns n: one single-copy symbol per node.
func (c *Code) Nodes() int { return c.n }

// Placement stores symbol s on node s, single copy.
func (c *Code) Placement() core.Placement { return c.placement }

// FaultTolerance returns n-k.
func (c *Code) FaultTolerance() int { return c.n - c.k }

// Encode produces the n coded symbols (systematic: the first k are the
// data).
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	size, err := core.CheckEncodeInput(data, c.k)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, c.n)
	for r := c.k; r < c.n; r++ {
		out[r] = make([]byte, size)
	}
	if err := c.EncodeInto(data, out); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeInto writes the n-k parity symbols into out[k:] through the
// compiled encode plan, aliasing the data blocks into out[:k].
func (c *Code) EncodeInto(data, out [][]byte) error {
	if _, err := core.CheckEncodeInput(data, c.k); err != nil {
		return err
	}
	if len(out) != c.n {
		return fmt.Errorf("rs: EncodeInto needs %d output slots, got %d", c.n, len(out))
	}
	copy(out, data)
	c.parity.Apply(data, out[c.k:])
	return nil
}

// Decode reconstructs the data from any k surviving symbols.
func (c *Code) Decode(avail [][]byte) ([][]byte, error) {
	if len(avail) != c.n {
		return nil, fmt.Errorf("rs: want %d symbols, got %d", c.n, len(avail))
	}
	var rows []int
	var bufs [][]byte
	for s, b := range avail {
		if b != nil {
			rows = append(rows, s)
			bufs = append(bufs, b)
			if len(rows) == c.k {
				break
			}
		}
	}
	if len(rows) < c.k {
		return nil, &core.ErasureError{
			Code: c.Name(), Missing: missingOf(avail),
			Reason: fmt.Sprintf("only %d of %d symbols survive", len(rows), c.k),
		}
	}
	// Fast path: all data symbols present.
	systematic := true
	for i, r := range rows {
		if r != i {
			systematic = false
			break
		}
	}
	if systematic {
		return append([][]byte(nil), avail[:c.k]...), nil
	}
	inv, err := c.invertRows(rows)
	if err != nil {
		return nil, err
	}
	return inv.MulVec(bufs), nil
}

// invertRows returns the inverse of the k x k submatrix of the encoding
// matrix formed by the given survivor rows, cached per row sequence
// (the inverse is row-order-sensitive, so the key must be too).
func (c *Code) invertRows(rows []int) (*gf256.Matrix, error) {
	return c.inverses.Get(core.SequenceKey(rows), func() (*gf256.Matrix, error) {
		inv, err := c.enc.SubMatrix(rows).Invert()
		if err != nil {
			return nil, fmt.Errorf("rs: decode matrix singular: %w", err)
		}
		return inv, nil
	})
}

func missingOf(avail [][]byte) []int {
	var m []int
	for s, b := range avail {
		if b == nil {
			m = append(m, s)
		}
	}
	return m
}

// decodeCoeffs returns, for a target symbol, coefficients over the
// given surviving symbol set such that target = sum coeff_i * rows_i.
// The underlying inversion is shared with Decode through the per-
// pattern cache.
func (c *Code) decodeCoeffs(target int, rows []int) ([]byte, error) {
	inv, err := c.invertRows(rows)
	if err != nil {
		return nil, fmt.Errorf("rs: helper matrix singular")
	}
	// target row of enc times inv gives the combination of the
	// surviving symbols.
	coeffs := make([]byte, len(rows))
	for i := range rows {
		var v byte
		for j := 0; j < c.k; j++ {
			v ^= gf256.Mul(c.enc.At(target, j), inv.At(j, i))
		}
		coeffs[i] = v
	}
	return coeffs, nil
}

// PlanRepair rebuilds each failed node's symbol from k surviving
// symbols — the k-block repair bill that motivates regenerating codes.
func (c *Code) PlanRepair(failed []int) (*core.RepairPlan, error) {
	down := make(map[int]bool, len(failed))
	for _, f := range failed {
		if f < 0 || f >= c.n {
			return nil, fmt.Errorf("rs: invalid node %d", f)
		}
		if down[f] {
			return nil, fmt.Errorf("rs: duplicate failed node %d", f)
		}
		down[f] = true
	}
	if len(failed) > c.n-c.k {
		return nil, &core.ErasureError{Code: c.Name(), Missing: failed, Reason: "beyond fault tolerance"}
	}
	var survivors []int
	for s := 0; s < c.n && len(survivors) < c.k; s++ {
		if !down[s] {
			survivors = append(survivors, s)
		}
	}
	plan := &core.RepairPlan{Failed: append([]int(nil), failed...)}
	for _, f := range failed {
		coeffs, err := c.decodeCoeffs(f, survivors)
		if err != nil {
			return nil, err
		}
		var sources []int
		var rc []byte
		for i, s := range survivors {
			if coeffs[i] == 0 {
				continue
			}
			sources = append(sources, len(plan.Transfers))
			rc = append(rc, 1)
			plan.Transfers = append(plan.Transfers, core.Transfer{
				From: s, To: f,
				Terms: []core.Term{{Symbol: s, Coeff: coeffs[i]}},
			})
		}
		plan.Recoveries = append(plan.Recoveries, core.Recovery{
			Node: f, Symbol: f, Sources: sources, Coeffs: rc,
		})
	}
	return plan, nil
}

// PlanRead delivers data symbol s: locally or by one copy when its
// node is up, otherwise by a k-transfer decode — RS has no cheaper
// degraded read.
func (c *Code) PlanRead(symbol int, down []int, at int) (*core.ReadPlan, error) {
	if symbol < 0 || symbol >= c.k {
		return nil, fmt.Errorf("rs: invalid data symbol %d", symbol)
	}
	isDown := make(map[int]bool, len(down))
	for _, d := range down {
		if d < 0 || d >= c.n {
			return nil, fmt.Errorf("rs: invalid down node %d", d)
		}
		isDown[d] = true
	}
	if !isDown[symbol] {
		if at == symbol {
			return &core.ReadPlan{Symbol: symbol, Local: true}, nil
		}
		return &core.ReadPlan{
			Symbol: symbol,
			Transfers: []core.Transfer{
				{From: symbol, To: at, Terms: []core.Term{{Symbol: symbol, Coeff: 1}}},
			},
		}, nil
	}
	var survivors []int
	for s := 0; s < c.n && len(survivors) < c.k; s++ {
		if !isDown[s] {
			survivors = append(survivors, s)
		}
	}
	if len(survivors) < c.k {
		return nil, &core.ErasureError{Code: c.Name(), Missing: down, Reason: "fewer than k symbols up"}
	}
	coeffs, err := c.decodeCoeffs(symbol, survivors)
	if err != nil {
		return nil, err
	}
	plan := &core.ReadPlan{Symbol: symbol}
	for i, s := range survivors {
		if coeffs[i] == 0 {
			continue
		}
		plan.Transfers = append(plan.Transfers, core.Transfer{
			From: s, To: at, Terms: []core.Term{{Symbol: s, Coeff: coeffs[i]}},
		})
		plan.Coeffs = append(plan.Coeffs, 1)
	}
	return plan, nil
}
