package replication

import (
	"math/rand"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
)

func TestShape(t *testing.T) {
	for _, r := range []int{1, 2, 3, 5} {
		c := New(r)
		if c.DataSymbols() != 1 || c.Symbols() != 1 {
			t.Errorf("%d-rep: bad symbol counts", r)
		}
		if c.Nodes() != r {
			t.Errorf("%d-rep: nodes = %d", r, c.Nodes())
		}
		if c.FaultTolerance() != r-1 {
			t.Errorf("%d-rep: tolerance = %d", r, c.FaultTolerance())
		}
		if so := core.StorageOverhead(c); so != float64(r) {
			t.Errorf("%d-rep: overhead = %v", r, so)
		}
		if err := core.VerifyPlacement(c); err != nil {
			t.Errorf("%d-rep: %v", r, err)
		}
	}
}

func TestInvalidFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestEncodeDecode(t *testing.T) {
	c := New(3)
	data := [][]byte{{1, 2, 3, 4}}
	symbols, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(symbols) != 1 || !block.Equal(symbols[0], data[0]) {
		t.Fatal("Encode must be the identity")
	}
	decoded, err := c.Decode(symbols)
	if err != nil {
		t.Fatal(err)
	}
	if !block.Equal(decoded[0], data[0]) {
		t.Fatal("Decode returned wrong data")
	}
	if _, err := c.Decode([][]byte{nil}); err == nil {
		t.Fatal("Decode succeeded with all replicas lost")
	}
	if _, err := c.Encode([][]byte{{1}, {2}}); err == nil {
		t.Fatal("Encode accepted 2 blocks")
	}
}

func TestRepairEveryPattern(t *testing.T) {
	c := New(3)
	rng := rand.New(rand.NewSource(1))
	data := [][]byte{make([]byte, 32)}
	rng.Read(data[0])
	symbols, _ := c.Encode(data)
	patterns := [][]int{{0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}}
	for _, failed := range patterns {
		plan, err := c.PlanRepair(failed)
		if err != nil {
			t.Fatalf("plan %v: %v", failed, err)
		}
		if plan.Bandwidth() != len(failed) {
			t.Errorf("repair of %v costs %d, want %d", failed, plan.Bandwidth(), len(failed))
		}
		nc := core.MaterializeNodes(c, symbols)
		nc.Erase(failed...)
		if err := core.ExecuteRepair(nc, plan, 32); err != nil {
			t.Fatalf("repair %v: %v", failed, err)
		}
		for v := 0; v < 3; v++ {
			if !block.Equal(nc[v][0], data[0]) {
				t.Fatalf("node %d wrong after repairing %v", v, failed)
			}
		}
	}
	if _, err := c.PlanRepair([]int{0, 1, 2}); err == nil {
		t.Fatal("PlanRepair accepted total loss")
	}
	if _, err := c.PlanRepair([]int{7}); err == nil {
		t.Fatal("PlanRepair accepted invalid node")
	}
}

func TestPlanRead(t *testing.T) {
	c := New(2)
	plan, err := c.PlanRead(0, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Local {
		t.Fatal("read at replica holder should be local")
	}
	plan, err = c.PlanRead(0, []int{1}, core.OffCluster)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bandwidth() != 1 || plan.Transfers[0].From != 0 {
		t.Fatal("remote read should copy from surviving replica")
	}
	if _, err := c.PlanRead(0, []int{0, 1}, core.OffCluster); err == nil {
		t.Fatal("read succeeded with all replicas down")
	}
	if _, err := c.PlanRead(1, nil, 0); err == nil {
		t.Fatal("read accepted invalid symbol")
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"2-rep", "3-rep"} {
		c, err := core.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != name {
			t.Fatalf("registry returned %q for %q", c.Name(), name)
		}
	}
}
