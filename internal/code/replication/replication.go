// Package replication implements r-way replication (the paper's 2-rep
// and 3-rep baselines) as a Code.
//
// A replication "stripe" is a single data block stored as r exact
// replicas on r distinct nodes, matching how HDFS replicates each block
// independently. Repair is a plain replica copy; a degraded read falls
// back to any surviving replica.
package replication

import (
	"fmt"

	"repro/internal/core"
)

// Code is an r-way replication scheme.
type Code struct {
	r         int
	placement core.Placement
}

var (
	_ core.Code          = (*Code)(nil)
	_ core.IntoEncoder   = (*Code)(nil)
	_ core.RepairPlanner = (*Code)(nil)
	_ core.ReadPlanner   = (*Code)(nil)
)

// New returns an r-way replication code. r must be at least 1.
func New(r int) *Code {
	if r < 1 {
		panic(fmt.Sprintf("replication: invalid factor %d", r))
	}
	nodes := make([]int, r)
	for i := range nodes {
		nodes[i] = i
	}
	return &Code{
		r:         r,
		placement: core.PlacementFromSymbolNodes([][]int{nodes}, r),
	}
}

func init() {
	core.Register("2-rep", func() core.Code { return New(2) })
	core.Register("3-rep", func() core.Code { return New(3) })
}

// Name returns "<r>-rep".
func (c *Code) Name() string { return fmt.Sprintf("%d-rep", c.r) }

// DataSymbols returns 1: replication stores one block per stripe.
func (c *Code) DataSymbols() int { return 1 }

// Symbols returns 1.
func (c *Code) Symbols() int { return 1 }

// Nodes returns the replication factor.
func (c *Code) Nodes() int { return c.r }

// Placement places the single symbol on all r nodes.
func (c *Code) Placement() core.Placement { return c.placement }

// FaultTolerance returns r-1.
func (c *Code) FaultTolerance() int { return c.r - 1 }

// Encode returns the single data block unchanged.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	if _, err := core.CheckEncodeInput(data, 1); err != nil {
		return nil, err
	}
	return [][]byte{data[0]}, nil
}

// EncodeInto aliases the single data block into out[0]; replication has
// no parity to compute.
func (c *Code) EncodeInto(data, out [][]byte) error {
	if _, err := core.CheckEncodeInput(data, 1); err != nil {
		return err
	}
	if len(out) != 1 {
		return fmt.Errorf("replication: EncodeInto needs 1 output slot, got %d", len(out))
	}
	out[0] = data[0]
	return nil
}

// Decode returns the block if any replica survives.
func (c *Code) Decode(avail [][]byte) ([][]byte, error) {
	if len(avail) != 1 {
		return nil, fmt.Errorf("replication: want 1 symbol, got %d", len(avail))
	}
	if avail[0] == nil {
		return nil, &core.ErasureError{Code: c.Name(), Missing: []int{0}, Reason: "all replicas lost"}
	}
	return [][]byte{avail[0]}, nil
}

// PlanRepair copies the block from any surviving replica to each failed
// node.
func (c *Code) PlanRepair(failed []int) (*core.RepairPlan, error) {
	down := make(map[int]bool, len(failed))
	for _, f := range failed {
		if f < 0 || f >= c.r {
			return nil, fmt.Errorf("replication: invalid node %d", f)
		}
		down[f] = true
	}
	src := -1
	for v := 0; v < c.r; v++ {
		if !down[v] {
			src = v
			break
		}
	}
	if src < 0 {
		return nil, &core.ErasureError{Code: c.Name(), Missing: failed, Reason: "all replicas lost"}
	}
	plan := &core.RepairPlan{Failed: append([]int(nil), failed...)}
	for _, f := range failed {
		ti := len(plan.Transfers)
		plan.Transfers = append(plan.Transfers, core.Transfer{
			From: src, To: f, Terms: []core.Term{{Symbol: 0, Coeff: 1}},
		})
		plan.Recoveries = append(plan.Recoveries, core.Recovery{
			Node: f, Symbol: 0, Sources: []int{ti},
		})
	}
	return plan, nil
}

// PlanRead reads the block locally if possible, otherwise copies it from
// any surviving replica.
func (c *Code) PlanRead(symbol int, down []int, at int) (*core.ReadPlan, error) {
	if symbol != 0 {
		return nil, fmt.Errorf("replication: invalid symbol %d", symbol)
	}
	isDown := make(map[int]bool, len(down))
	for _, d := range down {
		isDown[d] = true
	}
	if at != core.OffCluster && at < c.r && !isDown[at] {
		return &core.ReadPlan{Symbol: 0, Local: true}, nil
	}
	for v := 0; v < c.r; v++ {
		if !isDown[v] {
			return &core.ReadPlan{
				Symbol: 0,
				Transfers: []core.Transfer{
					{From: v, To: at, Terms: []core.Term{{Symbol: 0, Coeff: 1}}},
				},
			}, nil
		}
	}
	return nil, &core.ErasureError{Code: c.Name(), Missing: down, Reason: "all replicas down"}
}
