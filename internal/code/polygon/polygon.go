// Package polygon implements the complete-graph repair-by-transfer
// minimum-bandwidth regenerating (MBR) codes of Shah et al., the family
// the paper's pentagon (n=5) and heptagon (n=7) codes belong to.
//
// For n nodes, the stripe has E = n(n-1)/2 distinct symbols, one per
// edge of the complete graph K_n: E-1 data blocks plus one XOR parity
// over the data. Each symbol is stored on the two nodes its edge
// connects, so every node holds n-1 blocks and every symbol is
// inherently replicated twice.
//
// The structure yields three properties the paper leans on:
//
//   - any n-2 nodes suffice to decode (2-node fault tolerance);
//   - a single failed node is repaired purely by transfer: each
//     neighbour copies back the one block it shares with the failed
//     node (n-1 block transfers, no computation);
//   - after a 2-node failure the one doubly-lost symbol is rebuilt from
//     n-2 partial parities, each computed inside a surviving node, so a
//     pentagon 2-node repair moves 10 blocks total and a degraded read
//     of a doubly-lost block moves only n-2 = 3 blocks (versus m = 9
//     for (10,9) RAID+m).
package polygon

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/core"
)

// Code is the K_n repair-by-transfer MBR code.
type Code struct {
	n         int // nodes
	e         int // symbols = n(n-1)/2
	name      string
	edges     [][2]int // symbol -> (i, j), i < j
	edgeID    [][]int  // (i, j) -> symbol
	placement core.Placement
}

var (
	_ core.Code          = (*Code)(nil)
	_ core.IntoEncoder   = (*Code)(nil)
	_ core.RepairPlanner = (*Code)(nil)
	_ core.ReadPlanner   = (*Code)(nil)
)

// New returns the K_n code. n must be at least 3. Names: n=5 is
// "pentagon", n=7 is "heptagon", otherwise "polygon-<n>".
func New(n int) *Code {
	if n < 3 {
		panic(fmt.Sprintf("polygon: invalid n %d", n))
	}
	e := n * (n - 1) / 2
	c := &Code{n: n, e: e}
	switch n {
	case 5:
		c.name = "pentagon"
	case 7:
		c.name = "heptagon"
	default:
		c.name = fmt.Sprintf("polygon-%d", n)
	}
	c.edges = make([][2]int, 0, e)
	c.edgeID = make([][]int, n)
	for i := range c.edgeID {
		c.edgeID[i] = make([]int, n)
		for j := range c.edgeID[i] {
			c.edgeID[i][j] = -1
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			id := len(c.edges)
			c.edges = append(c.edges, [2]int{i, j})
			c.edgeID[i][j] = id
			c.edgeID[j][i] = id
		}
	}
	symbolNodes := make([][]int, e)
	for s, ij := range c.edges {
		symbolNodes[s] = []int{ij[0], ij[1]}
	}
	c.placement = core.PlacementFromSymbolNodes(symbolNodes, n)
	return c
}

func init() {
	core.Register("pentagon", func() core.Code { return New(5) })
	core.Register("heptagon", func() core.Code { return New(7) })
}

// Name returns the code's name.
func (c *Code) Name() string { return c.name }

// DataSymbols returns n(n-1)/2 - 1 (9 for the pentagon, 20 for the
// heptagon).
func (c *Code) DataSymbols() int { return c.e - 1 }

// Symbols returns n(n-1)/2; the last symbol is the XOR parity.
func (c *Code) Symbols() int { return c.e }

// ParitySymbol returns the index of the XOR parity symbol (the edge
// between the two highest-numbered nodes).
func (c *Code) ParitySymbol() int { return c.e - 1 }

// Nodes returns n.
func (c *Code) Nodes() int { return c.n }

// Placement puts each edge symbol on its two endpoint nodes; every node
// stores n-1 symbols.
func (c *Code) Placement() core.Placement { return c.placement }

// FaultTolerance returns 2: any two node failures fully erase exactly
// one symbol, which the XOR parity equation recovers.
func (c *Code) FaultTolerance() int { return 2 }

// Edge returns the endpoints (i < j) of symbol s.
func (c *Code) Edge(s int) (int, int) { return c.edges[s][0], c.edges[s][1] }

// EdgeSymbol returns the symbol stored on the edge between nodes i and
// j, or -1 if i == j.
func (c *Code) EdgeSymbol(i, j int) int { return c.edgeID[i][j] }

// Encode copies the data blocks onto edges 0..E-2 and computes the XOR
// parity for the final edge.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	size, err := core.CheckEncodeInput(data, c.DataSymbols())
	if err != nil {
		return nil, err
	}
	out := make([][]byte, c.e)
	out[c.e-1] = make([]byte, size)
	if err := c.EncodeInto(data, out); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeInto computes the XOR parity into out[E-1], aliasing the data
// blocks into out[:E-1].
func (c *Code) EncodeInto(data, out [][]byte) error {
	if _, err := core.CheckEncodeInput(data, c.DataSymbols()); err != nil {
		return err
	}
	if len(out) != c.e {
		return fmt.Errorf("%s: EncodeInto needs %d output slots, got %d", c.name, c.e, len(out))
	}
	copy(out, data)
	parity := out[c.e-1]
	copy(parity, data[0])
	for _, d := range data[1:] {
		block.XorInto(parity, d)
	}
	return nil
}

// Decode reconstructs the data blocks. At most one missing symbol is
// recoverable (via the XOR equation); two or more missing symbols is
// exactly the pattern left by three or more node failures and fails.
func (c *Code) Decode(avail [][]byte) ([][]byte, error) {
	if len(avail) != c.e {
		return nil, fmt.Errorf("%s: want %d symbols, got %d", c.name, c.e, len(avail))
	}
	missing := -1
	for s, b := range avail {
		if b != nil {
			continue
		}
		if missing >= 0 {
			return nil, &core.ErasureError{
				Code: c.name, Missing: []int{missing, s},
				Reason: "more than one symbol lost",
			}
		}
		missing = s
	}
	data := make([][]byte, c.DataSymbols())
	copy(data, avail[:c.DataSymbols()])
	if missing >= 0 && missing < c.DataSymbols() {
		present := make([][]byte, 0, c.e-1)
		for s, b := range avail {
			if s != missing {
				present = append(present, b)
			}
		}
		data[missing] = block.Xor(present...)
	}
	return data, nil
}

// PlanRepair rebuilds one or two failed nodes.
//
// One failure: pure repair-by-transfer — each surviving neighbour copies
// the shared edge block back (n-1 transfers).
//
// Two failures: the n-2 singly-lost edges of each failed node are copied
// from their surviving endpoints (2(n-2) transfers); the doubly-lost
// shared edge is rebuilt on the first replacement from n-2 partial
// parities computed inside the survivors, then copied to the second
// replacement. Total bandwidth 3(n-2)+1 — 10 blocks for the pentagon,
// matching Section 2.1 of the paper.
func (c *Code) PlanRepair(failed []int) (*core.RepairPlan, error) {
	seen := make(map[int]bool, len(failed))
	for _, f := range failed {
		if f < 0 || f >= c.n {
			return nil, fmt.Errorf("%s: invalid node %d", c.name, f)
		}
		if seen[f] {
			return nil, fmt.Errorf("%s: duplicate failed node %d", c.name, f)
		}
		seen[f] = true
	}
	switch len(failed) {
	case 0:
		return &core.RepairPlan{}, nil
	case 1:
		return c.planSingleRepair(failed[0]), nil
	case 2:
		return c.planDoubleRepair(failed[0], failed[1]), nil
	default:
		return nil, &core.ErasureError{
			Code: c.name, Missing: failed,
			Reason: fmt.Sprintf("%d node failures exceed fault tolerance 2", len(failed)),
		}
	}
}

func (c *Code) planSingleRepair(f int) *core.RepairPlan {
	plan := &core.RepairPlan{Failed: []int{f}}
	for u := 0; u < c.n; u++ {
		if u == f {
			continue
		}
		s := c.edgeID[f][u]
		ti := len(plan.Transfers)
		plan.Transfers = append(plan.Transfers, core.Transfer{
			From: u, To: f, Terms: []core.Term{{Symbol: s, Coeff: 1}},
		})
		plan.Recoveries = append(plan.Recoveries, core.Recovery{Node: f, Symbol: s, Sources: []int{ti}})
	}
	return plan
}

func (c *Code) planDoubleRepair(f1, f2 int) *core.RepairPlan {
	plan := &core.RepairPlan{Failed: []int{f1, f2}}
	shared := c.edgeID[f1][f2]

	// Copy every singly-lost edge back from its surviving endpoint.
	for _, f := range []int{f1, f2} {
		other := f1 + f2 - f
		for u := 0; u < c.n; u++ {
			if u == f || u == other {
				continue
			}
			s := c.edgeID[f][u]
			ti := len(plan.Transfers)
			plan.Transfers = append(plan.Transfers, core.Transfer{
				From: u, To: f, Terms: []core.Term{{Symbol: s, Coeff: 1}},
			})
			plan.Recoveries = append(plan.Recoveries, core.Recovery{Node: f, Symbol: s, Sources: []int{ti}})
		}
	}

	// Partial parities for the doubly-lost shared edge: each survivor u
	// XORs its two failed-incident edges with its share of the
	// survivor-survivor edges (oriented so each is counted exactly
	// once); the XOR of all partials is the shared edge because the XOR
	// of all E symbols is zero.
	var partials []int
	for _, tr := range c.PartialParityTransfers(f1, f2, f1) {
		partials = append(partials, len(plan.Transfers))
		plan.Transfers = append(plan.Transfers, tr)
	}
	plan.Recoveries = append(plan.Recoveries, core.Recovery{Node: f1, Symbol: shared, Sources: partials})

	// Copy the rebuilt shared edge to the second replacement.
	copyIdx := len(plan.Transfers)
	plan.Transfers = append(plan.Transfers, core.Transfer{
		From: f1, To: f2, Terms: []core.Term{{Symbol: shared, Coeff: 1}},
	})
	plan.Recoveries = append(plan.Recoveries, core.Recovery{Node: f2, Symbol: shared, Sources: []int{copyIdx}})
	return plan
}

// PartialParityTransfers returns the n-2 partial-parity transfers that
// deliver the doubly-lost edge (f1, f2) to node dst: one per surviving
// node, each a within-node XOR whose overall XOR equals the lost
// symbol.
func (c *Code) PartialParityTransfers(f1, f2, dst int) []core.Transfer {
	var survivors []int
	for u := 0; u < c.n; u++ {
		if u != f1 && u != f2 {
			survivors = append(survivors, u)
		}
	}
	transfers := make([]core.Transfer, 0, len(survivors))
	for ai, u := range survivors {
		terms := []core.Term{
			{Symbol: c.edgeID[u][f1], Coeff: 1},
			{Symbol: c.edgeID[u][f2], Coeff: 1},
		}
		// Orientation: survivor-survivor edge (survivors[a], survivors[b])
		// with a < b is assigned to survivors[a].
		for bi := ai + 1; bi < len(survivors); bi++ {
			terms = append(terms, core.Term{Symbol: c.edgeID[u][survivors[bi]], Coeff: 1})
		}
		transfers = append(transfers, core.Transfer{From: u, To: dst, Terms: terms})
	}
	return transfers
}

// PlanRead delivers a data symbol to node at. If both endpoints of the
// symbol's edge are down, the read costs only n-2 partial-parity blocks
// — the on-the-fly repair advantage of Section 3.1.
func (c *Code) PlanRead(symbol int, down []int, at int) (*core.ReadPlan, error) {
	if symbol < 0 || symbol >= c.DataSymbols() {
		return nil, fmt.Errorf("%s: invalid data symbol %d", c.name, symbol)
	}
	isDown := make(map[int]bool, len(down))
	for _, d := range down {
		if d < 0 || d >= c.n {
			return nil, fmt.Errorf("%s: invalid down node %d", c.name, d)
		}
		isDown[d] = true
	}
	i, j := c.Edge(symbol)
	if at != core.OffCluster && !isDown[at] && (at == i || at == j) {
		return &core.ReadPlan{Symbol: symbol, Local: true}, nil
	}
	for _, v := range []int{i, j} {
		if !isDown[v] {
			return &core.ReadPlan{
				Symbol: symbol,
				Transfers: []core.Transfer{
					{From: v, To: at, Terms: []core.Term{{Symbol: symbol, Coeff: 1}}},
				},
			}, nil
		}
	}
	// Both replicas down: partial-parity degraded read. All other nodes
	// must be up, otherwise the stripe has >2 failures.
	for u := 0; u < c.n; u++ {
		if u != i && u != j && isDown[u] {
			return nil, &core.ErasureError{
				Code: c.name, Missing: down,
				Reason: "more than two nodes down",
			}
		}
	}
	return &core.ReadPlan{
		Symbol:    symbol,
		Transfers: c.PartialParityTransfers(i, j, at),
	}, nil
}
