package polygon

// Exhaustive structural and repair tests for K_n beyond the paper's
// two instances: the construction generalizes to any n >= 3, and these
// tests pin the invariants for the neighbouring sizes a user might
// instantiate via New.

import (
	"math/rand"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
)

func TestGenericShapes(t *testing.T) {
	for _, n := range []int{3, 4, 6, 8, 9} {
		c := New(n)
		e := n * (n - 1) / 2
		if c.Symbols() != e || c.DataSymbols() != e-1 {
			t.Errorf("K%d: symbols=%d data=%d", n, c.Symbols(), c.DataSymbols())
		}
		if got := c.Placement().TotalBlocks(); got != 2*e {
			t.Errorf("K%d stores %d blocks, want %d", n, got, 2*e)
		}
		wantOverhead := 2 * float64(e) / float64(e-1)
		if so := core.StorageOverhead(c); so < wantOverhead-1e-9 || so > wantOverhead+1e-9 {
			t.Errorf("K%d overhead = %v, want %v", n, so, wantOverhead)
		}
	}
}

// TestGenericDecodeAndRepair runs the full erasure/repair matrix for
// K4, K6 and K9.
func TestGenericDecodeAndRepair(t *testing.T) {
	for _, n := range []int{4, 6, 9} {
		c := New(n)
		rng := rand.New(rand.NewSource(int64(n)))
		data := make([][]byte, c.DataSymbols())
		for i := range data {
			data[i] = make([]byte, 24)
			rng.Read(data[i])
		}
		symbols, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		for f1 := 0; f1 < n; f1++ {
			for f2 := f1 + 1; f2 < n; f2++ {
				nc := core.MaterializeNodes(c, symbols)
				nc.Erase(f1, f2)
				decoded, err := c.Decode(nc.Available(c.Symbols()))
				if err != nil {
					t.Fatalf("K%d decode after %d,%d: %v", n, f1, f2, err)
				}
				for i := range data {
					if !block.Equal(decoded[i], data[i]) {
						t.Fatalf("K%d block %d wrong", n, i)
					}
				}
				plan, err := c.PlanRepair([]int{f1, f2})
				if err != nil {
					t.Fatal(err)
				}
				if plan.Bandwidth() != 3*(n-2)+1 {
					t.Fatalf("K%d double repair bandwidth %d, want %d", n, plan.Bandwidth(), 3*(n-2)+1)
				}
				nc2 := core.MaterializeNodes(c, symbols)
				nc2.Erase(f1, f2)
				if err := core.ExecuteRepair(nc2, plan, 24); err != nil {
					t.Fatalf("K%d repair %d,%d: %v", n, f1, f2, err)
				}
				for v := range nc2 {
					for _, s := range c.Placement().NodeSymbols[v] {
						if !block.Equal(nc2[v][s], symbols[s]) {
							t.Fatalf("K%d node %d symbol %d wrong after repair", n, v, s)
						}
					}
				}
			}
		}
	}
}

// TestTriangle is the degenerate smallest member: K3 has 3 symbols
// (2 data + parity), each replicated on 2 of 3 nodes.
func TestTriangle(t *testing.T) {
	c := New(3)
	data := [][]byte{{1, 2}, {3, 4}}
	symbols, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !block.Equal(symbols[2], block.Xor(data...)) {
		t.Fatal("K3 parity wrong")
	}
	// One node failure: repair by transfer, 2 copies.
	plan, err := c.PlanRepair([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bandwidth() != 2 {
		t.Fatalf("K3 single repair = %d, want 2", plan.Bandwidth())
	}
	// Two node failures leave one node with 2 of 3 symbols: decodable.
	nc := core.MaterializeNodes(c, symbols)
	nc.Erase(0, 1)
	decoded, err := c.Decode(nc.Available(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !block.Equal(decoded[i], data[i]) {
			t.Fatal("K3 decode wrong")
		}
	}
}

func TestNewRejectsTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(2) did not panic")
		}
	}()
	New(2)
}
