package polygon

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// FuzzPentagonRoundTrip feeds arbitrary bytes through stripe encoding,
// a fuzz-chosen 2-node erasure, decode, and compares. Runs its seed
// corpus under plain `go test`; use `go test -fuzz=FuzzPentagon` for a
// live fuzzing session.
func FuzzPentagonRoundTrip(f *testing.F) {
	f.Add([]byte("seed data for the pentagon fuzzer"), uint8(0), uint8(1))
	f.Add([]byte{}, uint8(3), uint8(4))
	f.Add(bytes.Repeat([]byte{0xA5}, 100), uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, a, b uint8) {
		c := New(5)
		const blockSize = 8
		// Build a full stripe from the fuzz input, zero-padded.
		blocks := make([][]byte, c.DataSymbols())
		for i := range blocks {
			blocks[i] = make([]byte, blockSize)
			off := i * blockSize
			if off < len(data) {
				copy(blocks[i], data[off:])
			}
		}
		symbols, err := c.Encode(blocks)
		if err != nil {
			t.Fatal(err)
		}
		f1 := int(a) % 5
		f2 := int(b) % 5
		nc := core.MaterializeNodes(c, symbols)
		nc.Erase(f1, f2)
		decoded, err := c.Decode(nc.Available(c.Symbols()))
		if err != nil {
			t.Fatalf("decode after erasing %d,%d: %v", f1, f2, err)
		}
		for i := range blocks {
			if !bytes.Equal(decoded[i], blocks[i]) {
				t.Fatalf("block %d mismatch after erasing %d,%d", i, f1, f2)
			}
		}
		// Repair must also restore everything when the two failures are
		// distinct nodes.
		if f1 != f2 {
			plan, err := c.PlanRepair([]int{f1, f2})
			if err != nil {
				t.Fatal(err)
			}
			nc2 := core.MaterializeNodes(c, symbols)
			nc2.Erase(f1, f2)
			if err := core.ExecuteRepair(nc2, plan, blockSize); err != nil {
				t.Fatal(err)
			}
			for v := range nc2 {
				for _, s := range c.Placement().NodeSymbols[v] {
					if !bytes.Equal(nc2[v][s], symbols[s]) {
						t.Fatalf("node %d symbol %d wrong after fuzz repair", v, s)
					}
				}
			}
		}
	})
}
