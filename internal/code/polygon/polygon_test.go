package polygon

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/block"
	"repro/internal/core"
)

const testBlockSize = 64

func randomData(t *testing.T, seed int64, k int) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, testBlockSize)
		rng.Read(data[i])
	}
	return data
}

func encoded(t *testing.T, c *Code, seed int64) ([][]byte, [][]byte) {
	t.Helper()
	data := randomData(t, seed, c.DataSymbols())
	symbols, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	return data, symbols
}

func TestPentagonShape(t *testing.T) {
	c := New(5)
	if c.DataSymbols() != 9 {
		t.Errorf("pentagon k = %d, want 9", c.DataSymbols())
	}
	if c.Symbols() != 10 {
		t.Errorf("pentagon symbols = %d, want 10", c.Symbols())
	}
	if c.Nodes() != 5 {
		t.Errorf("pentagon n = %d, want 5", c.Nodes())
	}
	if got := c.Placement().TotalBlocks(); got != 20 {
		t.Errorf("pentagon stores %d blocks, want 20", got)
	}
	if so := core.StorageOverhead(c); so < 2.221 || so > 2.223 {
		t.Errorf("pentagon overhead = %.3f, want 2.22", so)
	}
	if c.FaultTolerance() != 2 {
		t.Errorf("pentagon fault tolerance = %d, want 2", c.FaultTolerance())
	}
}

func TestHeptagonShape(t *testing.T) {
	c := New(7)
	if c.DataSymbols() != 20 {
		t.Errorf("heptagon k = %d, want 20", c.DataSymbols())
	}
	if c.Symbols() != 21 {
		t.Errorf("heptagon symbols = %d, want 21", c.Symbols())
	}
	if got := c.Placement().TotalBlocks(); got != 42 {
		t.Errorf("heptagon stores %d blocks, want 42", got)
	}
	if so := core.StorageOverhead(c); so < 2.09 || so > 2.11 {
		t.Errorf("heptagon overhead = %.3f, want 2.1", so)
	}
}

func TestPlacementInvariants(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6, 7, 9} {
		c := New(n)
		if err := core.VerifyPlacement(c); err != nil {
			t.Errorf("K%d: %v", n, err)
		}
		// Every node holds exactly n-1 symbols; every symbol on exactly
		// 2 nodes.
		p := c.Placement()
		for v, syms := range p.NodeSymbols {
			if len(syms) != n-1 {
				t.Errorf("K%d node %d holds %d symbols, want %d", n, v, len(syms), n-1)
			}
		}
		for s, nodes := range p.SymbolNodes {
			if len(nodes) != 2 {
				t.Errorf("K%d symbol %d has %d replicas, want 2", n, s, len(nodes))
			}
		}
	}
}

func TestEdgeSymbolRoundTrip(t *testing.T) {
	c := New(7)
	for s := 0; s < c.Symbols(); s++ {
		i, j := c.Edge(s)
		if i >= j {
			t.Fatalf("Edge(%d) = (%d, %d) not ordered", s, i, j)
		}
		if c.EdgeSymbol(i, j) != s || c.EdgeSymbol(j, i) != s {
			t.Fatalf("EdgeSymbol(%d,%d) != %d", i, j, s)
		}
	}
	if c.EdgeSymbol(3, 3) != -1 {
		t.Fatal("EdgeSymbol(v,v) should be -1")
	}
}

func TestEncodeParity(t *testing.T) {
	c := New(5)
	data, symbols := encoded(t, c, 1)
	if !block.Equal(symbols[c.ParitySymbol()], block.Xor(data...)) {
		t.Fatal("parity symbol is not XOR of data")
	}
	for i, d := range data {
		if !block.Equal(symbols[i], d) {
			t.Fatalf("code is not systematic at %d", i)
		}
	}
}

func TestEncodeInputValidation(t *testing.T) {
	c := New(5)
	if _, err := c.Encode(make([][]byte, 3)); err == nil {
		t.Fatal("Encode accepted wrong block count")
	}
	bad := randomData(t, 1, 9)
	bad[4] = bad[4][:10]
	if _, err := c.Encode(bad); err == nil {
		t.Fatal("Encode accepted ragged blocks")
	}
}

// TestDecodeFromAnyTwoNodeErasure exhaustively verifies the paper's
// claim that the contents of any n-2 nodes suffice to recover the data.
func TestDecodeFromAnyTwoNodeErasure(t *testing.T) {
	for _, n := range []int{5, 7} {
		c := New(n)
		data, symbols := encoded(t, c, int64(n))
		for f1 := 0; f1 < n; f1++ {
			for f2 := f1 + 1; f2 < n; f2++ {
				nc := core.MaterializeNodes(c, symbols)
				nc.Erase(f1, f2)
				avail := nc.Available(c.Symbols())
				decoded, err := c.Decode(avail)
				if err != nil {
					t.Fatalf("K%d: decode after erasing %d,%d: %v", n, f1, f2, err)
				}
				for i := range data {
					if !block.Equal(decoded[i], data[i]) {
						t.Fatalf("K%d: wrong block %d after erasing %d,%d", n, i, f1, f2)
					}
				}
			}
		}
	}
}

func TestDecodeFailsOnThreeNodeErasure(t *testing.T) {
	c := New(5)
	_, symbols := encoded(t, c, 2)
	nc := core.MaterializeNodes(c, symbols)
	nc.Erase(0, 1, 2)
	if _, err := c.Decode(nc.Available(c.Symbols())); err == nil {
		t.Fatal("decode succeeded after 3 node erasures")
	}
}

func TestDecodeNoErasure(t *testing.T) {
	c := New(5)
	data, symbols := encoded(t, c, 3)
	decoded, err := c.Decode(symbols)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !block.Equal(decoded[i], data[i]) {
			t.Fatalf("block %d corrupted by decode", i)
		}
	}
}

func TestDecodeParityErased(t *testing.T) {
	c := New(5)
	data, symbols := encoded(t, c, 4)
	avail := block.CloneAll(symbols)
	avail[c.ParitySymbol()] = nil
	decoded, err := c.Decode(avail)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !block.Equal(decoded[i], data[i]) {
			t.Fatalf("block %d wrong with parity erased", i)
		}
	}
}

// TestSingleNodeRepairByTransfer verifies the repair-by-transfer
// property: every failed-node repair is pure copies, one per neighbour.
func TestSingleNodeRepairByTransfer(t *testing.T) {
	for _, n := range []int{5, 7} {
		c := New(n)
		_, symbols := encoded(t, c, int64(10+n))
		for f := 0; f < n; f++ {
			plan, err := c.PlanRepair([]int{f})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := plan.Bandwidth(), n-1; got != want {
				t.Errorf("K%d single repair bandwidth = %d, want %d", n, got, want)
			}
			for _, tr := range plan.Transfers {
				if !tr.IsCopy() {
					t.Errorf("K%d single repair uses a non-copy transfer %v", n, tr)
				}
			}
			nc := core.MaterializeNodes(c, symbols)
			nc.Erase(f)
			if err := core.ExecuteRepair(nc, plan, testBlockSize); err != nil {
				t.Fatalf("K%d repair of node %d: %v", n, f, err)
			}
			assertFullyRestored(t, c, nc, symbols)
		}
	}
}

// TestDoubleNodeRepair verifies the paper's 2-node repair: 10 blocks of
// repair bandwidth for the pentagon, with the doubly-lost block rebuilt
// from partial parities.
func TestDoubleNodeRepair(t *testing.T) {
	for _, n := range []int{5, 7} {
		c := New(n)
		_, symbols := encoded(t, c, int64(20+n))
		for f1 := 0; f1 < n; f1++ {
			for f2 := f1 + 1; f2 < n; f2++ {
				plan, err := c.PlanRepair([]int{f1, f2})
				if err != nil {
					t.Fatal(err)
				}
				if got, want := plan.Bandwidth(), 3*(n-2)+1; got != want {
					t.Errorf("K%d double repair bandwidth = %d, want %d", n, got, want)
				}
				nc := core.MaterializeNodes(c, symbols)
				nc.Erase(f1, f2)
				if err := core.ExecuteRepair(nc, plan, testBlockSize); err != nil {
					t.Fatalf("K%d repair of %d,%d: %v", n, f1, f2, err)
				}
				assertFullyRestored(t, c, nc, symbols)
			}
		}
	}
}

func TestPentagonDoubleRepairBandwidthIsTen(t *testing.T) {
	c := New(5)
	plan, err := c.PlanRepair([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bandwidth() != 10 {
		t.Fatalf("pentagon 2-node repair bandwidth = %d, want 10 (paper §2.1)", plan.Bandwidth())
	}
}

func TestRepairRejectsTooManyFailures(t *testing.T) {
	c := New(5)
	if _, err := c.PlanRepair([]int{0, 1, 2}); err == nil {
		t.Fatal("PlanRepair accepted 3 failures")
	}
	if _, err := c.PlanRepair([]int{0, 0}); err == nil {
		t.Fatal("PlanRepair accepted duplicate failures")
	}
	if _, err := c.PlanRepair([]int{9}); err == nil {
		t.Fatal("PlanRepair accepted invalid node")
	}
}

func TestEmptyRepairPlan(t *testing.T) {
	c := New(5)
	plan, err := c.PlanRepair(nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bandwidth() != 0 {
		t.Fatal("empty repair should be free")
	}
}

func TestReadLocal(t *testing.T) {
	c := New(5)
	for s := 0; s < c.DataSymbols(); s++ {
		i, j := c.Edge(s)
		for _, at := range []int{i, j} {
			plan, err := c.PlanRead(s, nil, at)
			if err != nil {
				t.Fatal(err)
			}
			if !plan.Local || plan.Bandwidth() != 0 {
				t.Fatalf("read of %d at endpoint %d should be local", s, at)
			}
		}
	}
}

func TestReadRemoteCopy(t *testing.T) {
	c := New(5)
	_, symbols := encoded(t, c, 5)
	nc := core.MaterializeNodes(c, symbols)
	s := 0
	i, _ := c.Edge(s)
	// Reader elsewhere, no failures: single copy.
	at := 4
	if at == i {
		t.Fatal("test setup: reader must not be an endpoint")
	}
	plan, err := c.PlanRead(s, nil, at)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Local || plan.Bandwidth() != 1 {
		t.Fatalf("remote read bandwidth = %d, want 1", plan.Bandwidth())
	}
	got, err := core.ExecuteRead(nc, plan, at, testBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if !block.Equal(got, symbols[s]) {
		t.Fatal("remote read returned wrong data")
	}
}

// TestDegradedReadPartialParity verifies the Section 3.1 claim: when
// both replicas of a block are down, the pentagon serves the read with
// only n-2 = 3 block transfers.
func TestDegradedReadPartialParity(t *testing.T) {
	for _, n := range []int{5, 7} {
		c := New(n)
		_, symbols := encoded(t, c, int64(30+n))
		for s := 0; s < c.DataSymbols(); s++ {
			i, j := c.Edge(s)
			nc := core.MaterializeNodes(c, symbols)
			nc.Erase(i, j)
			plan, err := c.PlanRead(s, []int{i, j}, core.OffCluster)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := plan.Bandwidth(), n-2; got != want {
				t.Fatalf("K%d degraded read bandwidth = %d, want %d", n, got, want)
			}
			got, err := core.ExecuteRead(nc, plan, core.OffCluster, testBlockSize)
			if err != nil {
				t.Fatal(err)
			}
			if !block.Equal(got, symbols[s]) {
				t.Fatalf("K%d degraded read of %d returned wrong data", n, s)
			}
		}
	}
}

func TestDegradedReadAtSurvivorIsCheaper(t *testing.T) {
	c := New(5)
	s := 0
	i, j := c.Edge(s)
	var at int
	for v := 0; v < 5; v++ {
		if v != i && v != j {
			at = v
			break
		}
	}
	plan, err := c.PlanRead(s, []int{i, j}, at)
	if err != nil {
		t.Fatal(err)
	}
	// One of the n-2 partials is computed at the reader itself, so only
	// n-3 cross the network.
	if got, want := plan.Bandwidth(), 2; got != want {
		t.Fatalf("degraded read at survivor bandwidth = %d, want %d", got, want)
	}
}

func TestReadFailsBeyondTolerance(t *testing.T) {
	c := New(5)
	s := 0
	i, j := c.Edge(s)
	var other int
	for v := 0; v < 5; v++ {
		if v != i && v != j {
			other = v
			break
		}
	}
	if _, err := c.PlanRead(s, []int{i, j, other}, core.OffCluster); err == nil {
		t.Fatal("PlanRead succeeded with 3 nodes down")
	}
}

func TestReadValidation(t *testing.T) {
	c := New(5)
	if _, err := c.PlanRead(9, nil, 0); err == nil {
		t.Fatal("PlanRead accepted the parity symbol as a data read")
	}
	if _, err := c.PlanRead(-1, nil, 0); err == nil {
		t.Fatal("PlanRead accepted negative symbol")
	}
	if _, err := c.PlanRead(0, []int{99}, 0); err == nil {
		t.Fatal("PlanRead accepted invalid down node")
	}
}

// TestRepairProperty: random data, every 2-node failure pair, repairs
// restore the exact original layout (quick-checked across seeds).
func TestRepairProperty(t *testing.T) {
	c := New(5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([][]byte, c.DataSymbols())
		for i := range data {
			data[i] = make([]byte, 32)
			rng.Read(data[i])
		}
		symbols, err := c.Encode(data)
		if err != nil {
			return false
		}
		f1 := rng.Intn(5)
		f2 := (f1 + 1 + rng.Intn(4)) % 5
		plan, err := c.PlanRepair([]int{f1, f2})
		if err != nil {
			return false
		}
		nc := core.MaterializeNodes(c, symbols)
		nc.Erase(f1, f2)
		if err := core.ExecuteRepair(nc, plan, 32); err != nil {
			return false
		}
		p := c.Placement()
		for v := range nc {
			for _, s := range p.NodeSymbols[v] {
				if !block.Equal(nc[v][s], symbols[s]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// assertFullyRestored checks that node contents exactly match the
// code's placement with the original symbol data.
func assertFullyRestored(t *testing.T, c core.Code, nc core.NodeContents, symbols [][]byte) {
	t.Helper()
	p := c.Placement()
	for v := range nc {
		if len(nc[v]) != len(p.NodeSymbols[v]) {
			t.Fatalf("node %d holds %d symbols, want %d", v, len(nc[v]), len(p.NodeSymbols[v]))
		}
		for _, s := range p.NodeSymbols[v] {
			b, ok := nc[v][s]
			if !ok {
				t.Fatalf("node %d missing symbol %d after repair", v, s)
			}
			if !block.Equal(b, symbols[s]) {
				t.Fatalf("node %d symbol %d corrupted after repair", v, s)
			}
		}
	}
}
