package raidm

import (
	"math/rand"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
)

const testBlockSize = 32

func encoded(t *testing.T, c *Code, seed int64) ([][]byte, [][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([][]byte, c.DataSymbols())
	for i := range data {
		data[i] = make([]byte, testBlockSize)
		rng.Read(data[i])
	}
	symbols, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	return data, symbols
}

func TestShape(t *testing.T) {
	c := New(9)
	if c.Name() != "(10,9) RAID+m" {
		t.Errorf("name = %q", c.Name())
	}
	if c.DataSymbols() != 9 || c.Symbols() != 10 || c.Nodes() != 20 {
		t.Errorf("bad shape: k=%d s=%d n=%d", c.DataSymbols(), c.Symbols(), c.Nodes())
	}
	if got := c.Placement().TotalBlocks(); got != 20 {
		t.Errorf("stores %d blocks, want 20", got)
	}
	if so := core.StorageOverhead(c); so < 2.221 || so > 2.223 {
		t.Errorf("overhead = %.3f, want 2.22", so)
	}
	c11 := New(11)
	if so := core.StorageOverhead(c11); so < 2.17 || so > 2.19 {
		t.Errorf("(12,11) overhead = %.3f, want 2.18", so)
	}
	if err := core.VerifyPlacement(c); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeParity(t *testing.T) {
	c := New(9)
	data, symbols := encoded(t, c, 1)
	if !block.Equal(symbols[9], block.Xor(data...)) {
		t.Fatal("parity wrong")
	}
}

// TestDecodeAllTripleNodeErasures verifies fault tolerance 3
// exhaustively: every C(20,3) = 1140 node-failure pattern decodes.
func TestDecodeAllTripleNodeErasures(t *testing.T) {
	c := New(9)
	data, symbols := encoded(t, c, 2)
	n := c.Nodes()
	for f1 := 0; f1 < n; f1++ {
		for f2 := f1 + 1; f2 < n; f2++ {
			for f3 := f2 + 1; f3 < n; f3++ {
				nc := core.MaterializeNodes(c, symbols)
				nc.Erase(f1, f2, f3)
				decoded, err := c.Decode(nc.Available(c.Symbols()))
				if err != nil {
					t.Fatalf("decode after %d,%d,%d: %v", f1, f2, f3, err)
				}
				for i := range data {
					if !block.Equal(decoded[i], data[i]) {
						t.Fatalf("block %d wrong after %d,%d,%d", i, f1, f2, f3)
					}
				}
			}
		}
	}
}

func TestDecodeFailsWhenTwoSymbolsLost(t *testing.T) {
	c := New(9)
	_, symbols := encoded(t, c, 3)
	nc := core.MaterializeNodes(c, symbols)
	nc.Erase(0, 1, 2, 3) // both replicas of symbols 0 and 1
	if _, err := c.Decode(nc.Available(c.Symbols())); err == nil {
		t.Fatal("decode succeeded with two symbols fully lost")
	}
}

func TestRepairMirrorCopy(t *testing.T) {
	c := New(9)
	_, symbols := encoded(t, c, 4)
	plan, err := c.PlanRepair([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bandwidth() != 1 || !plan.Transfers[0].IsCopy() {
		t.Fatalf("single node repair should be one copy, got %v", plan.Transfers)
	}
	nc := core.MaterializeNodes(c, symbols)
	nc.Erase(4)
	if err := core.ExecuteRepair(nc, plan, testBlockSize); err != nil {
		t.Fatal(err)
	}
	if !block.Equal(nc[4][2], symbols[2]) {
		t.Fatal("node 4 not restored")
	}
}

// TestRepairDoublyLostSymbol verifies the m-block reconstruction cost
// when a mirror pair fails: no partial parities exist in RAID+m.
func TestRepairDoublyLostSymbol(t *testing.T) {
	c := New(9)
	_, symbols := encoded(t, c, 5)
	plan, err := c.PlanRepair([]int{6, 7}) // both replicas of symbol 3
	if err != nil {
		t.Fatal(err)
	}
	// 9 block transfers to rebuild + 1 copy to the mirror.
	if plan.Bandwidth() != 10 {
		t.Fatalf("mirror-pair repair bandwidth = %d, want 10", plan.Bandwidth())
	}
	nc := core.MaterializeNodes(c, symbols)
	nc.Erase(6, 7)
	if err := core.ExecuteRepair(nc, plan, testBlockSize); err != nil {
		t.Fatal(err)
	}
	if !block.Equal(nc[6][3], symbols[3]) || !block.Equal(nc[7][3], symbols[3]) {
		t.Fatal("mirror pair not restored")
	}
}

func TestRepairAllTriplePatterns(t *testing.T) {
	c := New(9)
	_, symbols := encoded(t, c, 6)
	n := c.Nodes()
	for f1 := 0; f1 < n; f1++ {
		for f2 := f1 + 1; f2 < n; f2++ {
			for f3 := f2 + 1; f3 < n; f3++ {
				plan, err := c.PlanRepair([]int{f1, f2, f3})
				if err != nil {
					t.Fatalf("plan %d,%d,%d: %v", f1, f2, f3, err)
				}
				nc := core.MaterializeNodes(c, symbols)
				nc.Erase(f1, f2, f3)
				if err := core.ExecuteRepair(nc, plan, testBlockSize); err != nil {
					t.Fatalf("repair %d,%d,%d: %v", f1, f2, f3, err)
				}
				for v := 0; v < n; v++ {
					s := symbolOf(v)
					if !block.Equal(nc[v][s], symbols[s]) {
						t.Fatalf("node %d wrong after %d,%d,%d", v, f1, f2, f3)
					}
				}
			}
		}
	}
}

func TestRepairRejectsTwoFullLosses(t *testing.T) {
	c := New(9)
	if _, err := c.PlanRepair([]int{0, 1, 2, 3}); err == nil {
		t.Fatal("PlanRepair accepted two fully-lost symbols")
	}
}

// TestDegradedReadCostsM is the Section 3.1 comparison: a read of a
// doubly-lost block costs m = 9 transfers under (10,9) RAID+m, versus 3
// for the pentagon.
func TestDegradedReadCostsM(t *testing.T) {
	c := New(9)
	_, symbols := encoded(t, c, 7)
	nc := core.MaterializeNodes(c, symbols)
	nc.Erase(0, 1) // both replicas of symbol 0
	plan, err := c.PlanRead(0, []int{0, 1}, core.OffCluster)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bandwidth() != 9 {
		t.Fatalf("degraded read bandwidth = %d, want 9 (paper §3.1)", plan.Bandwidth())
	}
	got, err := core.ExecuteRead(nc, plan, core.OffCluster, testBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if !block.Equal(got, symbols[0]) {
		t.Fatal("degraded read returned wrong data")
	}
}

func TestReadPaths(t *testing.T) {
	c := New(9)
	plan, err := c.PlanRead(2, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Local {
		t.Fatal("read at holder should be local")
	}
	plan, err = c.PlanRead(2, []int{4}, core.OffCluster)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bandwidth() != 1 || plan.Transfers[0].From != 5 {
		t.Fatal("read should copy from the surviving mirror")
	}
	if _, err := c.PlanRead(9, nil, 0); err == nil {
		t.Fatal("read accepted the parity symbol")
	}
	// Unrecoverable: the wanted symbol and another symbol both fully
	// down.
	if _, err := c.PlanRead(0, []int{0, 1, 2, 3}, core.OffCluster); err == nil {
		t.Fatal("read succeeded with two symbols down")
	}
}

func TestRegistry(t *testing.T) {
	c, err := core.New("raid+m-10-9")
	if err != nil {
		t.Fatal(err)
	}
	if c.DataSymbols() != 9 {
		t.Fatal("registry returned wrong code")
	}
	c, err = core.New("raid+m-12-11")
	if err != nil {
		t.Fatal(err)
	}
	if c.DataSymbols() != 11 {
		t.Fatal("registry returned wrong code")
	}
}
