// Package raidm implements the (m+1, m) RAID+mirroring scheme the paper
// compares against: m data blocks plus one XOR parity block, with every
// one of the m+1 blocks mirrored, spread over 2(m+1) distinct nodes
// (one block per node).
//
// The paper evaluates the (10,9) and (12,11) instances. Like the
// pentagon-family codes, RAID+m has inherent double replication; unlike
// them it spreads a stripe over many nodes (code length 2(m+1)), which
// is the feasibility drawback Table 1 highlights, and a degraded read of
// a doubly-lost block costs m block transfers because the scheme has no
// partial parities.
package raidm

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/core"
)

// Code is an (m+1, m) RAID+mirroring scheme.
type Code struct {
	m         int
	placement core.Placement
}

var (
	_ core.Code          = (*Code)(nil)
	_ core.IntoEncoder   = (*Code)(nil)
	_ core.RepairPlanner = (*Code)(nil)
	_ core.ReadPlanner   = (*Code)(nil)
)

// New returns the (m+1, m) RAID+m code. m must be at least 2.
func New(m int) *Code {
	if m < 2 {
		panic(fmt.Sprintf("raidm: invalid m %d", m))
	}
	symbolNodes := make([][]int, m+1)
	for s := range symbolNodes {
		symbolNodes[s] = []int{2 * s, 2*s + 1}
	}
	return &Code{
		m:         m,
		placement: core.PlacementFromSymbolNodes(symbolNodes, 2*(m+1)),
	}
}

func init() {
	core.Register("raid+m-10-9", func() core.Code { return New(9) })
	core.Register("raid+m-12-11", func() core.Code { return New(11) })
}

// Name returns "(m+1,m) RAID+m".
func (c *Code) Name() string { return fmt.Sprintf("(%d,%d) RAID+m", c.m+1, c.m) }

// DataSymbols returns m.
func (c *Code) DataSymbols() int { return c.m }

// Symbols returns m+1 (data plus the XOR parity).
func (c *Code) Symbols() int { return c.m + 1 }

// Nodes returns 2(m+1): every block replica gets its own node.
func (c *Code) Nodes() int { return 2 * (c.m + 1) }

// Placement puts symbol s on nodes 2s and 2s+1.
func (c *Code) Placement() core.Placement { return c.placement }

// FaultTolerance returns 3: losing two full symbols requires four node
// failures, and a single fully-lost symbol is recoverable from the XOR
// parity equation.
func (c *Code) FaultTolerance() int { return 3 }

// Encode appends the XOR parity to the data blocks.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	size, err := core.CheckEncodeInput(data, c.m)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, c.m+1)
	out[c.m] = make([]byte, size)
	if err := c.EncodeInto(data, out); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeInto computes the XOR parity into out[m], aliasing the data
// blocks into out[:m].
func (c *Code) EncodeInto(data, out [][]byte) error {
	if _, err := core.CheckEncodeInput(data, c.m); err != nil {
		return err
	}
	if len(out) != c.m+1 {
		return fmt.Errorf("raidm: EncodeInto needs %d output slots, got %d", c.m+1, len(out))
	}
	copy(out, data)
	parity := out[c.m]
	copy(parity, data[0])
	for _, d := range data[1:] {
		block.XorInto(parity, d)
	}
	return nil
}

// Decode reconstructs the data from the surviving symbols: at most one
// missing symbol can be rebuilt from the XOR equation.
func (c *Code) Decode(avail [][]byte) ([][]byte, error) {
	if len(avail) != c.m+1 {
		return nil, fmt.Errorf("raidm: want %d symbols, got %d", c.m+1, len(avail))
	}
	missing := -1
	for s, b := range avail {
		if b != nil {
			continue
		}
		if missing >= 0 {
			return nil, &core.ErasureError{
				Code: c.Name(), Missing: []int{missing, s},
				Reason: "more than one symbol lost",
			}
		}
		missing = s
	}
	data := make([][]byte, c.m)
	copy(data, avail[:c.m])
	if missing >= 0 && missing < c.m {
		present := make([][]byte, 0, c.m)
		for s, b := range avail {
			if s != missing {
				present = append(present, b)
			}
		}
		data[missing] = block.Xor(present...)
	}
	return data, nil
}

// mirror returns the node holding the other replica of the symbol on
// node v.
func mirror(v int) int { return v ^ 1 }

// symbolOf returns the symbol stored on node v.
func symbolOf(v int) int { return v / 2 }

// PlanRepair rebuilds the failed nodes. Replicas whose mirror survives
// are copied; a doubly-lost symbol is reconstructed by XORing the other
// m symbols (m transfers — RAID+m has no partial parities) and then
// copied to its second replacement.
func (c *Code) PlanRepair(failed []int) (*core.RepairPlan, error) {
	down := make(map[int]bool, len(failed))
	for _, f := range failed {
		if f < 0 || f >= c.Nodes() {
			return nil, fmt.Errorf("raidm: invalid node %d", f)
		}
		down[f] = true
	}
	// Count fully lost symbols first.
	var fullyLost []int
	for _, f := range failed {
		if down[mirror(f)] && f < mirror(f) {
			fullyLost = append(fullyLost, symbolOf(f))
		}
	}
	if len(fullyLost) > 1 {
		return nil, &core.ErasureError{Code: c.Name(), Missing: fullyLost, Reason: "two symbols fully lost"}
	}
	plan := &core.RepairPlan{Failed: append([]int(nil), failed...)}
	for _, f := range failed {
		s := symbolOf(f)
		if !down[mirror(f)] {
			ti := len(plan.Transfers)
			plan.Transfers = append(plan.Transfers, core.Transfer{
				From: mirror(f), To: f, Terms: []core.Term{{Symbol: s, Coeff: 1}},
			})
			plan.Recoveries = append(plan.Recoveries, core.Recovery{Node: f, Symbol: s, Sources: []int{ti}})
		}
	}
	// Reconstruct the doubly-lost symbol, if any, at its lower-numbered
	// replacement, then copy it across to the mirror.
	if len(fullyLost) == 1 {
		s := fullyLost[0]
		r1, r2 := 2*s, 2*s+1
		var sources []int
		for other := 0; other <= c.m; other++ {
			if other == s {
				continue
			}
			src := 2 * other
			if down[src] {
				src = mirror(src) // mirror must be up: only one symbol fully lost
			}
			sources = append(sources, len(plan.Transfers))
			plan.Transfers = append(plan.Transfers, core.Transfer{
				From: src, To: r1, Terms: []core.Term{{Symbol: other, Coeff: 1}},
			})
		}
		plan.Recoveries = append(plan.Recoveries, core.Recovery{Node: r1, Symbol: s, Sources: sources})
		copyIdx := len(plan.Transfers)
		plan.Transfers = append(plan.Transfers, core.Transfer{
			From: r1, To: r2, Terms: []core.Term{{Symbol: s, Coeff: 1}},
		})
		plan.Recoveries = append(plan.Recoveries, core.Recovery{Node: r2, Symbol: s, Sources: []int{copyIdx}})
	}
	return plan, nil
}

// PlanRead reads a data symbol: locally if the reader holds it, from the
// surviving mirror if one is up, and otherwise by the full-stripe XOR
// reconstruction costing m block transfers.
func (c *Code) PlanRead(symbol int, down []int, at int) (*core.ReadPlan, error) {
	if symbol < 0 || symbol >= c.m {
		return nil, fmt.Errorf("raidm: invalid data symbol %d", symbol)
	}
	isDown := make(map[int]bool, len(down))
	for _, d := range down {
		isDown[d] = true
	}
	if at != core.OffCluster && !isDown[at] && symbolOf(at) == symbol {
		return &core.ReadPlan{Symbol: symbol, Local: true}, nil
	}
	for _, v := range c.placement.SymbolNodes[symbol] {
		if !isDown[v] {
			return &core.ReadPlan{
				Symbol: symbol,
				Transfers: []core.Transfer{
					{From: v, To: at, Terms: []core.Term{{Symbol: symbol, Coeff: 1}}},
				},
			}, nil
		}
	}
	// Degraded read: XOR of the other m symbols.
	plan := &core.ReadPlan{Symbol: symbol}
	for other := 0; other <= c.m; other++ {
		if other == symbol {
			continue
		}
		src := -1
		for _, v := range c.placement.SymbolNodes[other] {
			if !isDown[v] && v != at {
				src = v
				break
			}
		}
		if src < 0 {
			// The reader itself may hold the block.
			if at != core.OffCluster && symbolOf(at) == other && !isDown[at] {
				src = at
			} else {
				return nil, &core.ErasureError{
					Code: c.Name(), Missing: []int{symbol, other},
					Reason: "two symbols unavailable",
				}
			}
		}
		plan.Transfers = append(plan.Transfers, core.Transfer{
			From: src, To: at, Terms: []core.Term{{Symbol: other, Coeff: 1}},
		})
	}
	return plan, nil
}
