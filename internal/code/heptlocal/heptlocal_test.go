package heptlocal

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/gf256"
)

const testBlockSize = 48

func randomData(tb testing.TB, seed int64) [][]byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([][]byte, K)
	for i := range data {
		data[i] = make([]byte, testBlockSize)
		rng.Read(data[i])
	}
	return data
}

func encoded(tb testing.TB, seed int64) ([][]byte, [][]byte) {
	tb.Helper()
	data := randomData(tb, seed)
	c := New()
	symbols, err := c.Encode(data)
	if err != nil {
		tb.Fatal(err)
	}
	return data, symbols
}

func TestShape(t *testing.T) {
	c := New()
	if c.DataSymbols() != 40 {
		t.Errorf("k = %d, want 40", c.DataSymbols())
	}
	if c.Symbols() != 44 {
		t.Errorf("symbols = %d, want 44", c.Symbols())
	}
	if c.Nodes() != 15 {
		t.Errorf("n = %d, want 15", c.Nodes())
	}
	if got := c.Placement().TotalBlocks(); got != 86 {
		t.Errorf("stores %d blocks, want 86 (paper §2.2)", got)
	}
	if so := core.StorageOverhead(c); so < 2.149 || so > 2.151 {
		t.Errorf("overhead = %.3f, want 2.15", so)
	}
	if c.FaultTolerance() != 3 {
		t.Errorf("fault tolerance = %d, want 3", c.FaultTolerance())
	}
}

func TestPlacementInvariants(t *testing.T) {
	c := New()
	if err := core.VerifyPlacement(c); err != nil {
		t.Fatal(err)
	}
	p := c.Placement()
	// Heptagon nodes hold 6 blocks each; the global node holds 2.
	for v := 0; v < 14; v++ {
		if len(p.NodeSymbols[v]) != 6 {
			t.Errorf("node %d holds %d symbols, want 6", v, len(p.NodeSymbols[v]))
		}
	}
	if len(p.NodeSymbols[globalNode]) != 2 {
		t.Errorf("global node holds %d symbols, want 2", len(p.NodeSymbols[globalNode]))
	}
	// Heptagon A symbols live on nodes 0-6, B on 7-13.
	for g := 0; g < K+2; g++ {
		h := groupOf(g)
		for _, v := range p.SymbolNodes[g] {
			if v/7 != h {
				t.Errorf("symbol %d (group %d) placed on node %d", g, h, v)
			}
		}
	}
}

func TestEncodeParities(t *testing.T) {
	data, symbols := encoded(t, 1)
	if !block.Equal(symbols[localParityA], block.Xor(data[:20]...)) {
		t.Error("local parity A wrong")
	}
	if !block.Equal(symbols[localParityB], block.Xor(data[20:]...)) {
		t.Error("local parity B wrong")
	}
	q0 := make([]byte, testBlockSize)
	q1 := make([]byte, testBlockSize)
	for i, d := range data {
		gf256.MulAddSlice(gf256.Exp(i), d, q0)
		gf256.MulAddSlice(gf256.Exp(2*i), d, q1)
	}
	if !block.Equal(symbols[globalQ0], q0) {
		t.Error("Q0 wrong")
	}
	if !block.Equal(symbols[globalQ1], q1) {
		t.Error("Q1 wrong")
	}
	for i := range data {
		if !block.Equal(symbols[i], data[i]) {
			t.Fatalf("not systematic at %d", i)
		}
	}
}

// TestDecodeAnyThreeNodeErasure is the exhaustive fault-tolerance test:
// all C(15,3) = 455 node-erasure patterns must decode.
func TestDecodeAnyThreeNodeErasure(t *testing.T) {
	c := New()
	data, symbols := encoded(t, 2)
	count := 0
	for f1 := 0; f1 < N; f1++ {
		for f2 := f1 + 1; f2 < N; f2++ {
			for f3 := f2 + 1; f3 < N; f3++ {
				nc := core.MaterializeNodes(c, symbols)
				nc.Erase(f1, f2, f3)
				decoded, err := c.Decode(nc.Available(S))
				if err != nil {
					t.Fatalf("decode after erasing %d,%d,%d: %v", f1, f2, f3, err)
				}
				for i := range data {
					if !block.Equal(decoded[i], data[i]) {
						t.Fatalf("block %d wrong after erasing %d,%d,%d", i, f1, f2, f3)
					}
				}
				count++
			}
		}
	}
	if count != 455 {
		t.Fatalf("tested %d patterns, want 455", count)
	}
}

func TestDecodeFourNodeErasureInOneHeptagonFails(t *testing.T) {
	c := New()
	_, symbols := encoded(t, 3)
	nc := core.MaterializeNodes(c, symbols)
	nc.Erase(0, 1, 2, 3) // loses 6 symbols entirely: beyond any help
	if _, err := c.Decode(nc.Available(S)); err == nil {
		t.Fatal("decode succeeded after losing 6 symbols")
	}
}

func TestDecodeNoErasure(t *testing.T) {
	c := New()
	data, symbols := encoded(t, 4)
	decoded, err := c.Decode(symbols)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !block.Equal(decoded[i], data[i]) {
			t.Fatalf("block %d corrupted", i)
		}
	}
}

func TestDecodeRecoverableFourSymbolPattern(t *testing.T) {
	// Two nodes down in each heptagon loses one symbol per heptagon
	// (2 total); adding the global node makes a recoverable 3-node...
	// here instead: erase 4 symbols directly — one data per heptagon
	// plus both globals — which the parity equations can still solve.
	c := New()
	data, symbols := encoded(t, 5)
	avail := block.CloneAll(symbols)
	avail[3] = nil
	avail[25] = nil
	avail[globalQ0] = nil
	avail[globalQ1] = nil
	decoded, err := c.Decode(avail)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !block.Equal(decoded[i], data[i]) {
			t.Fatalf("block %d wrong", i)
		}
	}
}

func TestDecodeUnsolvableFourSymbolPattern(t *testing.T) {
	// Two data symbols missing in one heptagon with both globals gone:
	// only the local XOR equation remains, rank 1 < 2.
	c := New()
	_, symbols := encoded(t, 6)
	avail := block.CloneAll(symbols)
	avail[3] = nil
	avail[5] = nil
	avail[globalQ0] = nil
	avail[globalQ1] = nil
	if _, err := c.Decode(avail); err == nil {
		t.Fatal("decode succeeded on rank-deficient pattern")
	}
}

// TestRepairAllSingleAndDoubleFailures checks local repair for every 1-
// and 2-node failure pattern, and that local repairs never touch the
// other heptagon or the global node.
func TestRepairAllSingleAndDoubleFailures(t *testing.T) {
	c := New()
	_, symbols := encoded(t, 7)
	for f1 := 0; f1 < N; f1++ {
		t.Run("", func(t *testing.T) {
			plan, err := c.PlanRepair([]int{f1})
			if err != nil {
				t.Fatal(err)
			}
			nc := core.MaterializeNodes(c, symbols)
			nc.Erase(f1)
			if err := core.ExecuteRepair(nc, plan, testBlockSize); err != nil {
				t.Fatalf("repair of %d: %v", f1, err)
			}
			assertFullyRestored(t, c, nc, symbols)
			if f1 < 7 {
				assertNoSourceIn(t, plan, 7, 15)
			} else if f1 < 14 {
				assertNoSourceIn(t, plan, 0, 7)
				assertNoSourceIn(t, plan, 14, 15)
			}
		})
		for f2 := f1 + 1; f2 < N; f2++ {
			plan, err := c.PlanRepair([]int{f1, f2})
			if err != nil {
				t.Fatalf("plan for %d,%d: %v", f1, f2, err)
			}
			nc := core.MaterializeNodes(c, symbols)
			nc.Erase(f1, f2)
			if err := core.ExecuteRepair(nc, plan, testBlockSize); err != nil {
				t.Fatalf("repair of %d,%d: %v", f1, f2, err)
			}
			assertFullyRestored(t, c, nc, symbols)
		}
	}
}

// TestRepairAllTripleFailures executes the repair plan for every
// C(15,3) = 455 triple failure, including the global-assisted path for
// three failures inside one heptagon.
func TestRepairAllTripleFailures(t *testing.T) {
	c := New()
	_, symbols := encoded(t, 8)
	for f1 := 0; f1 < N; f1++ {
		for f2 := f1 + 1; f2 < N; f2++ {
			for f3 := f2 + 1; f3 < N; f3++ {
				plan, err := c.PlanRepair([]int{f1, f2, f3})
				if err != nil {
					t.Fatalf("plan for %d,%d,%d: %v", f1, f2, f3, err)
				}
				nc := core.MaterializeNodes(c, symbols)
				nc.Erase(f1, f2, f3)
				if err := core.ExecuteRepair(nc, plan, testBlockSize); err != nil {
					t.Fatalf("repair of %d,%d,%d: %v", f1, f2, f3, err)
				}
				assertFullyRestored(t, c, nc, symbols)
			}
		}
	}
}

func TestLocalRepairBandwidthMatchesHeptagon(t *testing.T) {
	c := New()
	// Single in-heptagon failure: 6 copies, like the heptagon code.
	plan, err := c.PlanRepair([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bandwidth() != 6 {
		t.Errorf("single repair bandwidth = %d, want 6", plan.Bandwidth())
	}
	// Double in-heptagon failure: 3(n-2)+1 = 16.
	plan, err = c.PlanRepair([]int{8, 12})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bandwidth() != 16 {
		t.Errorf("double repair bandwidth = %d, want 16", plan.Bandwidth())
	}
}

func TestGlobalRebuildUsesPartialParities(t *testing.T) {
	c := New()
	plan, err := c.PlanRepair([]int{globalNode})
	if err != nil {
		t.Fatal(err)
	}
	// Two partials from each contributing node. Under the
	// lower-endpoint orientation nodes 0-4 of each heptagon own data
	// edges (node 5's only forward edge is the parity edge, node 6 owns
	// none), so 5 nodes x 2 partials x 2 heptagons = 20 transfers,
	// versus 40 for shipping raw data blocks.
	if plan.Bandwidth() != 20 {
		t.Errorf("global rebuild bandwidth = %d, want 20", plan.Bandwidth())
	}
	if plan.Bandwidth() >= 40 {
		t.Error("global rebuild no cheaper than raw data shipping")
	}
}

func TestTripleRepairTouchesBothHeptagons(t *testing.T) {
	c := New()
	plan, err := c.PlanRepair([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	usesB, usesGlobal := false, false
	for _, tr := range plan.Transfers {
		if tr.From >= 7 && tr.From < 14 {
			usesB = true
		}
		if tr.From == globalNode {
			usesGlobal = true
		}
	}
	if !usesB || !usesGlobal {
		t.Fatalf("triple repair should engage heptagon B (%v) and the global node (%v)", usesB, usesGlobal)
	}
}

func TestRepairRejectsFourFailures(t *testing.T) {
	c := New()
	if _, err := c.PlanRepair([]int{0, 1, 2, 3}); err == nil {
		t.Fatal("PlanRepair accepted 4 failures")
	}
	if _, err := c.PlanRepair([]int{0, 0}); err == nil {
		t.Fatal("PlanRepair accepted duplicates")
	}
	if _, err := c.PlanRepair([]int{15}); err == nil {
		t.Fatal("PlanRepair accepted invalid node")
	}
}

func TestReadLocalAndCopy(t *testing.T) {
	c := New()
	_, symbols := encoded(t, 9)
	nc := core.MaterializeNodes(c, symbols)
	for g := 0; g < K; g++ {
		h := groupOf(g)
		i, j := c.edgeEndpoints(h, g)
		plan, err := c.PlanRead(g, nil, i)
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Local {
			t.Fatalf("read of %d at %d not local", g, i)
		}
		plan, err = c.PlanRead(g, []int{i}, core.OffCluster)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Bandwidth() != 1 || plan.Transfers[0].From != j {
			t.Fatalf("read of %d with %d down should copy from %d", g, i, j)
		}
		got, err := core.ExecuteRead(nc, plan, core.OffCluster, testBlockSize)
		if err != nil {
			t.Fatal(err)
		}
		if !block.Equal(got, symbols[g]) {
			t.Fatalf("read of %d returned wrong data", g)
		}
	}
}

func TestDegradedReadAllDataSymbols(t *testing.T) {
	c := New()
	_, symbols := encoded(t, 10)
	for g := 0; g < K; g++ {
		h := groupOf(g)
		i, j := c.edgeEndpoints(h, g)
		nc := core.MaterializeNodes(c, symbols)
		nc.Erase(i, j)
		plan, err := c.PlanRead(g, []int{i, j}, core.OffCluster)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Bandwidth() != 5 {
			t.Fatalf("degraded read of %d bandwidth = %d, want 5", g, plan.Bandwidth())
		}
		got, err := core.ExecuteRead(nc, plan, core.OffCluster, testBlockSize)
		if err != nil {
			t.Fatal(err)
		}
		if !block.Equal(got, symbols[g]) {
			t.Fatalf("degraded read of %d returned wrong data", g)
		}
	}
}

func TestReadErrorsBeyondLocalTolerance(t *testing.T) {
	c := New()
	// Three failures in heptagon A including both replicas of symbol 0.
	i, j := c.edgeEndpoints(0, 0)
	var third int
	for v := 0; v < 7; v++ {
		if v != i && v != j {
			third = v
			break
		}
	}
	if _, err := c.PlanRead(0, []int{i, j, third}, core.OffCluster); err == nil {
		t.Fatal("PlanRead succeeded with 3 in-heptagon failures")
	}
	if _, err := c.PlanRead(41, nil, core.OffCluster); err == nil {
		t.Fatal("PlanRead accepted a parity symbol")
	}
}

// TestDecodeProperty fuzzes erasure patterns of up to 3 nodes with
// random data.
func TestDecodeProperty(t *testing.T) {
	c := New()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([][]byte, K)
		for i := range data {
			data[i] = make([]byte, 16)
			rng.Read(data[i])
		}
		symbols, err := c.Encode(data)
		if err != nil {
			return false
		}
		perm := rng.Perm(N)
		failed := perm[:1+rng.Intn(3)]
		nc := core.MaterializeNodes(c, symbols)
		nc.Erase(failed...)
		decoded, err := c.Decode(nc.Available(S))
		if err != nil {
			return false
		}
		for i := range data {
			if !block.Equal(decoded[i], data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func assertFullyRestored(t *testing.T, c *Code, nc core.NodeContents, symbols [][]byte) {
	t.Helper()
	p := c.Placement()
	for v := range nc {
		if len(nc[v]) != len(p.NodeSymbols[v]) {
			t.Fatalf("node %d holds %d symbols, want %d", v, len(nc[v]), len(p.NodeSymbols[v]))
		}
		for _, s := range p.NodeSymbols[v] {
			b, ok := nc[v][s]
			if !ok {
				t.Fatalf("node %d missing symbol %d after repair", v, s)
			}
			if !block.Equal(b, symbols[s]) {
				t.Fatalf("node %d symbol %d corrupted after repair", v, s)
			}
		}
	}
}

func assertNoSourceIn(t *testing.T, plan *core.RepairPlan, lo, hi int) {
	t.Helper()
	for _, tr := range plan.Transfers {
		if tr.From >= lo && tr.From < hi {
			t.Fatalf("local repair read from node %d (range %d-%d)", tr.From, lo, hi)
		}
	}
}

// TestConcurrentDecodeDistinctPatterns decodes the same stripe under
// every 3-node erasure pattern concurrently, all sharing the cached
// syndrome-solve plans — the -race guard for the decode-plan cache.
func TestConcurrentDecodeDistinctPatterns(t *testing.T) {
	data, symbols := encoded(t, 78)
	c := New()
	var patterns [][]int
	for a := 0; a < N; a++ {
		for b := a + 1; b < N; b++ {
			for d := b + 1; d < N; d++ {
				patterns = append(patterns, []int{a, b, d})
			}
		}
	}
	// Keep the goroutine count bounded: shard the patterns.
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pi := w; pi < len(patterns); pi += workers {
				nodes := patterns[pi]
				nc := core.MaterializeNodes(c, symbols)
				nc.Erase(nodes...)
				got, err := c.Decode(nc.Available(S))
				if err != nil {
					errs <- fmt.Errorf("erasing nodes %v: %v", nodes, err)
					return
				}
				for i := range data {
					if !block.Equal(got[i], data[i]) {
						errs <- fmt.Errorf("erasing nodes %v: block %d wrong", nodes, i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
