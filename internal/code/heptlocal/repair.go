package heptlocal

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/gf256"
)

// PlanRepair rebuilds up to three failed nodes.
//
//   - One or two failures inside a heptagon are repaired locally with
//     the heptagon's own repair-by-transfer / partial-parity plan; the
//     second heptagon and the global node are never touched.
//   - A failed global node recomputes Q0 and Q1 from per-node partial
//     parities (two per contributing node) instead of shipping all 40
//     raw data blocks.
//   - Three failures inside one heptagon lose three symbols entirely;
//     they are rebuilt on the lowest replacement node by combining
//     partial parities from both heptagons with the global parities,
//     then forwarded to the remaining replacements.
func (c *Code) PlanRepair(failed []int) (*core.RepairPlan, error) {
	seen := make(map[int]bool, len(failed))
	var inA, inB []int
	globalDown := false
	for _, f := range failed {
		if f < 0 || f >= N {
			return nil, fmt.Errorf("heptagon-local: invalid node %d", f)
		}
		if seen[f] {
			return nil, fmt.Errorf("heptagon-local: duplicate failed node %d", f)
		}
		seen[f] = true
		switch {
		case f < 7:
			inA = append(inA, f)
		case f < 14:
			inB = append(inB, f-7)
		default:
			globalDown = true
		}
	}
	if len(failed) > 3 {
		return nil, &core.ErasureError{
			Code: c.Name(), Missing: failed,
			Reason: fmt.Sprintf("%d node failures exceed fault tolerance 3", len(failed)),
		}
	}
	plan := &core.RepairPlan{}
	for h, group := range [][]int{inA, inB} {
		switch len(group) {
		case 0:
		case 1, 2:
			local, err := c.hept.PlanRepair(group)
			if err != nil {
				return nil, err
			}
			plan.Merge(c.remapPlan(h, local))
		case 3:
			sub, err := c.planTripleInGroup(h, group)
			if err != nil {
				return nil, err
			}
			plan.Merge(sub)
		}
	}
	if globalDown {
		plan.Merge(c.planGlobalRebuild())
	}
	plan.Failed = append([]int(nil), failed...)
	return plan, nil
}

// remapPlan lifts a polygon-local plan for heptagon h into stripe
// coordinates.
func (c *Code) remapPlan(h int, local *core.RepairPlan) *core.RepairPlan {
	out := &core.RepairPlan{}
	for _, f := range local.Failed {
		out.Failed = append(out.Failed, 7*h+f)
	}
	for _, tr := range local.Transfers {
		terms := make([]core.Term, len(tr.Terms))
		for i, t := range tr.Terms {
			terms[i] = core.Term{Symbol: c.globalSymbol(h, t.Symbol), Coeff: t.Coeff}
		}
		out.Transfers = append(out.Transfers, core.Transfer{
			From: 7*h + tr.From, To: 7*h + tr.To, Terms: terms,
		})
	}
	for _, rec := range local.Recoveries {
		out.Recoveries = append(out.Recoveries, core.Recovery{
			Node:    7*h + rec.Node,
			Symbol:  c.globalSymbol(h, rec.Symbol),
			Sources: append([]int(nil), rec.Sources...),
			Coeffs:  append([]byte(nil), rec.Coeffs...),
			Scratch: rec.Scratch,
		})
	}
	return out
}

// planGlobalRebuild recomputes Q0 and Q1 on the global-parity node from
// partial parities: every node aggregates its assigned data edges
// (each edge assigned to its lower endpoint so it is counted exactly
// once) into one alpha^i-weighted and one alpha^2i-weighted block.
func (c *Code) planGlobalRebuild() *core.RepairPlan {
	plan := &core.RepairPlan{Failed: []int{globalNode}}
	var srcQ0, srcQ1 []int
	for h := 0; h < 2; h++ {
		for v := 0; v < 7; v++ {
			var t0, t1 []core.Term
			for _, g := range c.assignedDataEdges(h, v) {
				t0 = append(t0, core.Term{Symbol: g, Coeff: gf256.Exp(g)})
				t1 = append(t1, core.Term{Symbol: g, Coeff: gf256.Exp(2 * g)})
			}
			if len(t0) == 0 {
				continue
			}
			srcQ0 = append(srcQ0, len(plan.Transfers))
			plan.Transfers = append(plan.Transfers, core.Transfer{From: 7*h + v, To: globalNode, Terms: t0})
			srcQ1 = append(srcQ1, len(plan.Transfers))
			plan.Transfers = append(plan.Transfers, core.Transfer{From: 7*h + v, To: globalNode, Terms: t1})
		}
	}
	plan.Recoveries = append(plan.Recoveries,
		core.Recovery{Node: globalNode, Symbol: globalQ0, Sources: srcQ0},
		core.Recovery{Node: globalNode, Symbol: globalQ1, Sources: srcQ1},
	)
	return plan
}

// assignedDataEdges returns the stripe symbol ids of heptagon h's data
// edges assigned to node v under the lower-endpoint orientation.
func (c *Code) assignedDataEdges(h, v int) []int {
	var out []int
	for w := v + 1; w < 7; w++ {
		t := c.hept.EdgeSymbol(v, w)
		if t == c.hept.ParitySymbol() {
			continue
		}
		out = append(out, c.globalSymbol(h, t))
	}
	return out
}

// planTripleInGroup repairs three failed nodes inside heptagon h. The
// three pairwise edges among the failed trio are fully lost; everything
// else is copied back from surviving endpoints. The lost trio is solved
// on the lowest replacement node from three syndromes — the heptagon's
// XOR equation and the two global-parity equations — each delivered as
// a sum of partial parities.
func (c *Code) planTripleInGroup(h int, trio []int) (*core.RepairPlan, error) {
	t := append([]int(nil), trio...)
	sort.Ints(t)
	f1, f2, f3 := t[0], t[1], t[2]
	plan := &core.RepairPlan{Failed: []int{7*h + f1, 7*h + f2, 7*h + f3}}
	failed := map[int]bool{f1: true, f2: true, f3: true}

	// Copy singly-lost edges back from their surviving endpoints.
	for _, f := range t {
		for u := 0; u < 7; u++ {
			if u == f || failed[u] {
				continue
			}
			g := c.globalSymbol(h, c.hept.EdgeSymbol(f, u))
			ti := len(plan.Transfers)
			plan.Transfers = append(plan.Transfers, core.Transfer{
				From: 7*h + u, To: 7*h + f, Terms: []core.Term{{Symbol: g, Coeff: 1}},
			})
			plan.Recoveries = append(plan.Recoveries, core.Recovery{
				Node: 7*h + f, Symbol: g, Sources: []int{ti},
			})
		}
	}

	// The three doubly-lost symbols.
	unknowns := []int{
		c.globalSymbol(h, c.hept.EdgeSymbol(f1, f2)),
		c.globalSymbol(h, c.hept.EdgeSymbol(f1, f3)),
		c.globalSymbol(h, c.hept.EdgeSymbol(f2, f3)),
	}
	r1 := 7*h + f1 // gathering/solving node

	// Gather transfers, tagged by which syndrome they feed:
	// group 0 = heptagon-h XOR equation, 1 = Q0 equation, 2 = Q1.
	var sources []int
	var groups []int
	addTransfer := func(tr core.Transfer, group int) {
		sources = append(sources, len(plan.Transfers))
		groups = append(groups, group)
		plan.Transfers = append(plan.Transfers, tr)
	}

	// Group 0: XOR partials from heptagon h's four survivors, covering
	// all 18 known h-edges exactly once (failed-incident edges go to
	// their surviving endpoint; survivor-survivor edges to the lower
	// survivor).
	var survivors []int
	for u := 0; u < 7; u++ {
		if !failed[u] {
			survivors = append(survivors, u)
		}
	}
	for ai, u := range survivors {
		var terms []core.Term
		for _, f := range t {
			terms = append(terms, core.Term{Symbol: c.globalSymbol(h, c.hept.EdgeSymbol(u, f)), Coeff: 1})
		}
		for bi := ai + 1; bi < len(survivors); bi++ {
			terms = append(terms, core.Term{Symbol: c.globalSymbol(h, c.hept.EdgeSymbol(u, survivors[bi])), Coeff: 1})
		}
		addTransfer(core.Transfer{From: 7*h + u, To: r1, Terms: terms}, 0)
	}

	// Groups 1 and 2: alpha-weighted partials over every KNOWN data
	// symbol of the stripe, plus the global parities themselves. Known
	// data edges of heptagon h are assigned to a surviving endpoint;
	// the other heptagon uses the lower-endpoint orientation.
	for _, eg := range []struct{ exp, group int }{{1, 1}, {2, 2}} {
		exp, group := eg.exp, eg.group
		for ai, u := range survivors {
			var terms []core.Term
			for _, f := range t {
				tt := c.hept.EdgeSymbol(u, f)
				if tt == c.hept.ParitySymbol() {
					continue
				}
				g := c.globalSymbol(h, tt)
				terms = append(terms, core.Term{Symbol: g, Coeff: gf256.Exp(exp * g)})
			}
			for bi := ai + 1; bi < len(survivors); bi++ {
				tt := c.hept.EdgeSymbol(u, survivors[bi])
				if tt == c.hept.ParitySymbol() {
					continue
				}
				g := c.globalSymbol(h, tt)
				terms = append(terms, core.Term{Symbol: g, Coeff: gf256.Exp(exp * g)})
			}
			if len(terms) == 0 {
				continue
			}
			addTransfer(core.Transfer{From: 7*h + u, To: r1, Terms: terms}, group)
		}
		other := 1 - h
		for v := 0; v < 7; v++ {
			var terms []core.Term
			for _, g := range c.assignedDataEdges(other, v) {
				terms = append(terms, core.Term{Symbol: g, Coeff: gf256.Exp(exp * g)})
			}
			if len(terms) == 0 {
				continue
			}
			addTransfer(core.Transfer{From: 7*other + v, To: r1, Terms: terms}, group)
		}
	}
	addTransfer(core.Transfer{From: globalNode, To: r1, Terms: []core.Term{{Symbol: globalQ0, Coeff: 1}}}, 1)
	addTransfer(core.Transfer{From: globalNode, To: r1, Terms: []core.Term{{Symbol: globalQ1, Coeff: 1}}}, 2)

	// Solve the 3x3 system: syndrome_j = sum_m M[j][m] * unknown_m,
	// where M[0][m] = 1 and M[row][m] is the unknown's coefficient in
	// the Q0/Q1 equations (zero for a local parity symbol).
	m := gf256.NewMatrix(3, 3)
	for mi, g := range unknowns {
		m.Set(0, mi, 1)
		if g < K {
			m.Set(1, mi, gf256.Exp(g))
			m.Set(2, mi, gf256.Exp(2*g))
		}
	}
	inv, err := m.Invert()
	if err != nil {
		return nil, fmt.Errorf("heptagon-local: trio system singular for nodes %v: %w", trio, err)
	}
	for mi, g := range unknowns {
		coeffs := make([]byte, len(sources))
		for i := range sources {
			coeffs[i] = inv.At(mi, groups[i])
		}
		// The trio edge between f1 and another failed node belongs on
		// r1; the edge (f2, f3) is rebuilt here only for forwarding.
		i, j := c.edgeEndpoints(h, g)
		scratch := i != r1 && j != r1
		plan.Recoveries = append(plan.Recoveries, core.Recovery{
			Node: r1, Symbol: g, Sources: append([]int(nil), sources...),
			Coeffs: coeffs, Scratch: scratch,
		})
		// Forward to every owner other than r1.
		for _, owner := range []int{i, j} {
			if owner == r1 {
				continue
			}
			ti := len(plan.Transfers)
			plan.Transfers = append(plan.Transfers, core.Transfer{
				From: r1, To: owner, Terms: []core.Term{{Symbol: g, Coeff: 1}},
			})
			plan.Recoveries = append(plan.Recoveries, core.Recovery{
				Node: owner, Symbol: g, Sources: []int{ti},
			})
		}
	}
	return plan, nil
}

// edgeEndpoints returns the stripe node ids storing symbol g of
// heptagon h.
func (c *Code) edgeEndpoints(h, g int) (int, int) {
	i, j := c.hept.Edge(c.localSymbol(h, g))
	return 7*h + i, 7*h + j
}

// PlanRead delivers data symbol g to node at. Reads are local when at
// holds a replica; a surviving replica is copied when one exists; when
// both replicas are down the symbol is rebuilt from the five in-group
// partial parities (5 block transfers), exactly like the heptagon code.
// Patterns needing the global parities (three failures in the symbol's
// own heptagon) are not plannable as a streaming read and return an
// error; callers fall back to full-stripe Decode.
func (c *Code) PlanRead(symbol int, down []int, at int) (*core.ReadPlan, error) {
	if symbol < 0 || symbol >= K {
		return nil, fmt.Errorf("heptagon-local: invalid data symbol %d", symbol)
	}
	isDown := make(map[int]bool, len(down))
	for _, d := range down {
		if d < 0 || d >= N {
			return nil, fmt.Errorf("heptagon-local: invalid down node %d", d)
		}
		isDown[d] = true
	}
	h := groupOf(symbol)
	i, j := c.edgeEndpoints(h, symbol)
	if at != core.OffCluster && !isDown[at] && (at == i || at == j) {
		return &core.ReadPlan{Symbol: symbol, Local: true}, nil
	}
	for _, v := range []int{i, j} {
		if !isDown[v] {
			return &core.ReadPlan{
				Symbol: symbol,
				Transfers: []core.Transfer{
					{From: v, To: at, Terms: []core.Term{{Symbol: symbol, Coeff: 1}}},
				},
			}, nil
		}
	}
	// Both replicas down: in-group partial-parity read if the rest of
	// the heptagon is up.
	for v := 7 * h; v < 7*h+7; v++ {
		if v != i && v != j && isDown[v] {
			return nil, &core.ErasureError{
				Code: c.Name(), Missing: down,
				Reason: "three failures in the symbol's heptagon; use full decode",
			}
		}
	}
	local := c.hept.PartialParityTransfers(i-7*h, j-7*h, 0)
	transfers := make([]core.Transfer, len(local))
	for ti, tr := range local {
		terms := make([]core.Term, len(tr.Terms))
		for k, term := range tr.Terms {
			terms[k] = core.Term{Symbol: c.globalSymbol(h, term.Symbol), Coeff: term.Coeff}
		}
		transfers[ti] = core.Transfer{From: 7*h + tr.From, To: at, Terms: terms}
	}
	return &core.ReadPlan{Symbol: symbol, Transfers: transfers}, nil
}
