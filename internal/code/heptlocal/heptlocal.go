// Package heptlocal implements the paper's heptagon-local code, an
// instance of the locally regenerating codes of Kamath et al.
//
// 40 data blocks are split into two groups of 20, each encoded by a
// heptagon (K7 repair-by-transfer) local code on 7 nodes, and two
// RAID-6-style global parity blocks over all 40 data blocks are stored
// on a 15th node:
//
//	symbols  0..19  data of heptagon A        (double replicated)
//	symbols 20..39  data of heptagon B        (double replicated)
//	symbol  40      local XOR parity of A     (double replicated)
//	symbol  41      local XOR parity of B     (double replicated)
//	symbol  42      global parity Q0 = sum alpha^i  d_i   (single copy)
//	symbol  43      global parity Q1 = sum alpha^2i d_i   (single copy)
//
// 86 physical blocks on 15 nodes, storage overhead 86/40 = 2.15x, and
// tolerance to ANY 3 node erasures. One or two failures inside a
// heptagon are repaired locally (exactly like the heptagon code); three
// failures in one heptagon engage the second heptagon and the global
// parities, with partial parities keeping the transfer count down.
package heptlocal

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/code/polygon"
	"repro/internal/core"
	"repro/internal/gf256"
)

const (
	dataPerGroup = 20
	// K is the number of data blocks per stripe.
	K = 2 * dataPerGroup
	// S is the number of distinct symbols per stripe.
	S = K + 4
	// N is the number of nodes per stripe.
	N = 15

	localParityA = 40
	localParityB = 41
	globalQ0     = 42
	globalQ1     = 43
	globalNode   = 14
)

// Code is the heptagon-local code.
type Code struct {
	hept      *polygon.Code // the K7 structure shared by both groups
	placement core.Placement
	parity    *gf256.Matrix    // 4 x S parity-check matrix
	globalEnc *core.EncodePlan // compiled Q0/Q1 rows over the 40 data columns

	// solves caches, per missing-symbol pattern, the u x 4 matrix
	// mapping syndromes to the missing symbols, so degraded stripes of
	// one failure pattern eliminate once instead of once per stripe.
	solves core.MatrixCache
}

var (
	_ core.Code          = (*Code)(nil)
	_ core.IntoEncoder   = (*Code)(nil)
	_ core.RepairPlanner = (*Code)(nil)
	_ core.ReadPlanner   = (*Code)(nil)
)

// New returns the heptagon-local code.
func New() *Code {
	c := &Code{hept: polygon.New(7)}

	symbolNodes := make([][]int, S)
	for h := 0; h < 2; h++ {
		for t := 0; t < c.hept.Symbols(); t++ {
			i, j := c.hept.Edge(t)
			symbolNodes[c.globalSymbol(h, t)] = []int{7*h + i, 7*h + j}
		}
	}
	symbolNodes[globalQ0] = []int{globalNode}
	symbolNodes[globalQ1] = []int{globalNode}
	c.placement = core.PlacementFromSymbolNodes(symbolNodes, N)

	// Parity-check rows: local A, local B, Q0, Q1.
	c.parity = gf256.NewMatrix(4, S)
	for i := 0; i < dataPerGroup; i++ {
		c.parity.Set(0, i, 1)
		c.parity.Set(1, dataPerGroup+i, 1)
	}
	c.parity.Set(0, localParityA, 1)
	c.parity.Set(1, localParityB, 1)
	for i := 0; i < K; i++ {
		c.parity.Set(2, i, gf256.Exp(i))
		c.parity.Set(3, i, gf256.Exp(2*i))
	}
	c.parity.Set(2, globalQ0, 1)
	c.parity.Set(3, globalQ1, 1)

	q := gf256.NewMatrix(2, K)
	for i := 0; i < K; i++ {
		q.Set(0, i, c.parity.At(2, i))
		q.Set(1, i, c.parity.At(3, i))
	}
	c.globalEnc = core.CompileEncode(q)
	return c
}

func init() {
	core.Register("heptagon-local", func() core.Code { return New() })
}

// globalSymbol maps heptagon h's polygon-local symbol t to the stripe
// symbol index.
func (c *Code) globalSymbol(h, t int) int {
	if t == c.hept.ParitySymbol() {
		return localParityA + h
	}
	return dataPerGroup*h + t
}

// localSymbol inverts globalSymbol for symbols belonging to heptagon h.
func (c *Code) localSymbol(h, g int) int {
	if g == localParityA+h {
		return c.hept.ParitySymbol()
	}
	return g - dataPerGroup*h
}

// groupOf returns which heptagon (0 or 1) a double-replicated symbol
// belongs to; global parities return 2.
func groupOf(g int) int {
	switch {
	case g < dataPerGroup || g == localParityA:
		return 0
	case g < K || g == localParityB:
		return 1
	default:
		return 2
	}
}

// Name returns "heptagon-local".
func (c *Code) Name() string { return "heptagon-local" }

// RackGroups prescribes the paper's rack-aware layout: heptagon A,
// heptagon B and the global-parity node each in their own rack, so
// common repairs never leave a rack and a full rack loss is a
// tolerated erasure pattern.
func (c *Code) RackGroups() [][]int {
	return [][]int{
		{0, 1, 2, 3, 4, 5, 6},
		{7, 8, 9, 10, 11, 12, 13},
		{globalNode},
	}
}

// DataSymbols returns 40.
func (c *Code) DataSymbols() int { return K }

// Symbols returns 44.
func (c *Code) Symbols() int { return S }

// Nodes returns 15: two disjoint heptagons plus the global-parity node.
func (c *Code) Nodes() int { return N }

// Placement returns the two-heptagons-plus-global-node layout (86
// physical blocks).
func (c *Code) Placement() core.Placement { return c.placement }

// FaultTolerance returns 3.
func (c *Code) FaultTolerance() int { return 3 }

// Encode computes the two local XOR parities and the two GF(2^8) global
// parities.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	size, err := core.CheckEncodeInput(data, K)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, S)
	for s := K; s < S; s++ {
		out[s] = make([]byte, size)
	}
	if err := c.EncodeInto(data, out); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeInto writes the two local XOR parities and, through the
// compiled global-parity plan, the two GF(2^8) global parities into
// out[40:], aliasing the data blocks into out[:40].
func (c *Code) EncodeInto(data, out [][]byte) error {
	if _, err := core.CheckEncodeInput(data, K); err != nil {
		return err
	}
	if len(out) != S {
		return fmt.Errorf("heptagon-local: EncodeInto needs %d output slots, got %d", S, len(out))
	}
	copy(out, data)
	xorInto(out[localParityA], data[:dataPerGroup])
	xorInto(out[localParityB], data[dataPerGroup:])
	c.globalEnc.ApplyRow(0, data, out[globalQ0])
	c.globalEnc.ApplyRow(1, data, out[globalQ1])
	return nil
}

// xorInto overwrites dst with the XOR of the given blocks.
func xorInto(dst []byte, blocks [][]byte) {
	copy(dst, blocks[0])
	for _, b := range blocks[1:] {
		block.XorInto(dst, b)
	}
}

// Decode reconstructs the 40 data blocks from any decodable erasure
// pattern by solving the four parity-check equations for the missing
// symbols. Any pattern left by up to 3 node erasures is decodable; some
// 4-symbol patterns also succeed when the corresponding parity-check
// columns are independent.
func (c *Code) Decode(avail [][]byte) ([][]byte, error) {
	if len(avail) != S {
		return nil, fmt.Errorf("heptagon-local: want %d symbols, got %d", S, len(avail))
	}
	var missing []int
	size := 0
	for g, b := range avail {
		if b == nil {
			missing = append(missing, g)
		} else if size == 0 {
			size = len(b)
		}
	}
	if len(missing) == 0 {
		return append([][]byte(nil), avail[:K]...), nil
	}
	if size == 0 {
		return nil, &core.ErasureError{Code: c.Name(), Missing: missing, Reason: "no symbols available"}
	}
	if len(missing) > 4 {
		return nil, &core.ErasureError{Code: c.Name(), Missing: missing, Reason: "more than four symbols lost"}
	}

	// Syndromes: rhs[j] = sum over available symbols of H[j][g]*avail[g];
	// for a valid codeword this equals the missing symbols' contribution.
	rhs := make([][]byte, 4)
	for j := range rhs {
		rhs[j] = make([]byte, size)
		for g, b := range avail {
			if b != nil {
				gf256.MulAddSlice(c.parity.At(j, g), b, rhs[j])
			}
		}
	}
	w, err := c.solvePlan(missing)
	if err != nil {
		return nil, &core.ErasureError{Code: c.Name(), Missing: missing, Reason: err.Error()}
	}
	solved := w.MulVec(rhs)
	full := append([][]byte(nil), avail...)
	for mi, g := range missing {
		full[g] = solved[mi]
	}
	return full[:K], nil
}

// solvePlan returns the cached u x 4 solve matrix W for a missing
// sequence: missing[i] = sum_j W[i][j] * syndrome_j. Compiling W runs
// the Gaussian elimination once on bytes; applying it per stripe is a
// flat matrix-vector product over the block buffers. W's rows follow
// the order of missing, so the cache key preserves the sequence.
func (c *Code) solvePlan(missing []int) (*gf256.Matrix, error) {
	return c.solves.Get(core.SequenceKey(missing), func() (*gf256.Matrix, error) {
		return c.compileSolve(missing)
	})
}

// compileSolve eliminates [cols | I4] where cols is the 4 x u
// parity-check submatrix of the missing symbols. The accumulated row
// operations T satisfy (T*cols) reduced; the missing symbol for column
// col is row pivotRow[col] of T applied to the syndromes.
func (c *Code) compileSolve(missing []int) (*gf256.Matrix, error) {
	u := len(missing)
	cols := gf256.NewMatrix(4, u)
	for j := 0; j < 4; j++ {
		for mi, g := range missing {
			cols.Set(j, mi, c.parity.At(j, g))
		}
	}
	t := gf256.Identity(4)
	pivotRow := make([]int, u)
	for i := range pivotRow {
		pivotRow[i] = -1
	}
	r := 0
	for col := 0; col < u && r < 4; col++ {
		pivot := -1
		for rr := r; rr < 4; rr++ {
			if cols.At(rr, col) != 0 {
				pivot = rr
				break
			}
		}
		if pivot < 0 {
			continue
		}
		if pivot != r {
			swapMatrixRows(cols, pivot, r)
			swapMatrixRows(t, pivot, r)
		}
		if p := cols.At(r, col); p != 1 {
			inv := gf256.Inv(p)
			gf256.MulSlice(inv, cols.Row(r), cols.Row(r))
			gf256.MulSlice(inv, t.Row(r), t.Row(r))
		}
		for rr := 0; rr < 4; rr++ {
			if rr == r {
				continue
			}
			f := cols.At(rr, col)
			if f == 0 {
				continue
			}
			gf256.MulAddSlice(f, cols.Row(r), cols.Row(rr))
			gf256.MulAddSlice(f, t.Row(r), t.Row(rr))
		}
		pivotRow[col] = r
		r++
	}
	w := gf256.NewMatrix(u, 4)
	for col := 0; col < u; col++ {
		if pivotRow[col] < 0 {
			return nil, fmt.Errorf("erasure pattern not solvable: symbol column %d has no pivot", col)
		}
		copy(w.Row(col), t.Row(pivotRow[col]))
	}
	return w, nil
}

func swapMatrixRows(m *gf256.Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}
