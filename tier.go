package hadoopcodes

import (
	"math/rand"

	"repro/internal/hdfsraid"
	"repro/internal/sim"
	"repro/internal/tier"
	"repro/internal/workload"
)

// Adaptive hot/cold tiering: the paper's double-replication codes buy
// data locality and cheap repair for hot data at ~2.2x storage, while
// RS(14,10) stores cold data at 1.4x. The tier subsystem moves files
// between the two as their access heat changes: a decayed-access
// HeatTracker fed by store read hooks, a TierPolicy with promote/
// demote hysteresis, and a TierManager that executes moves by online
// transcoding.

// HeatTracker tracks per-file access heat with exponential decay.
type HeatTracker = tier.Tracker

// NewHeatTracker returns a tracker whose counters halve every
// halfLife seconds.
func NewHeatTracker(halfLife float64) *HeatTracker { return tier.NewTracker(halfLife) }

// TierPolicy maps decayed heat to hot/cold code membership with
// hysteresis.
type TierPolicy = tier.Policy

// TierMove is one promote/demote decision.
type TierMove = tier.Move

// TierMoveResult is one executed move with its traffic bill.
type TierMoveResult = tier.MoveResult

// TierManager wires tracker, policy and a store together.
type TierManager = tier.Manager

// TierTarget is a store the manager can tier files in.
type TierTarget = tier.Target

// TierExtentTarget is a TierTarget exposing sub-file extents as the
// tiering unit: heat, policy and moves all run per extent, so a hot
// region of a large file promotes on its own. The on-disk store and
// the simulated cluster target both satisfy it.
type TierExtentTarget = tier.ExtentTarget

// NewTierManager returns a manager tiering files inside an on-disk
// store. Hook heat tracking into the data path with:
//
//	store.OnRead = func(name string) { m.OnRead(name, now()) }
func NewTierManager(s *Store, policy TierPolicy, tracker *HeatTracker) (*TierManager, error) {
	return tier.NewManager(tier.StoreTarget{Store: s}, policy, tracker)
}

// TranscodeReport summarizes one online transcode between codes.
type TranscodeReport = hdfsraid.TranscodeReport

// TranscodeIntent is the crash-recovery journal record of an
// in-flight transcode, persisted in the store manifest before any
// destructive swap step.
type TranscodeIntent = hdfsraid.TranscodeIntent

// RecoverReport summarizes the journal recovery pass OpenStore runs:
// interrupted transcodes replayed or rolled back, orphan staged
// blocks swept.
type RecoverReport = hdfsraid.RecoverReport

// TierDaemon is the autonomous background rebalancer: it scans the
// tiering policy on an interval and executes moves hottest file
// first under a token-bucket transcode byte budget.
type TierDaemon = tier.Daemon

// TierDaemonConfig parameterizes the rebalance daemon's scan interval
// and byte budget.
type TierDaemonConfig = tier.DaemonConfig

// TierDaemonStats counts the daemon's scans, moves, deferrals and
// bytes moved.
type TierDaemonStats = tier.DaemonStats

// NewTierDaemon returns a stopped rebalance daemon for the manager;
// drive it with Start/Stop on the wall clock or Tick on a virtual one.
func NewTierDaemon(m *TierManager, cfg TierDaemonConfig) (*TierDaemon, error) {
	return tier.NewDaemon(m, cfg)
}

// TierClusterTarget tiers files over the simulated cluster placement
// instead of disk, for large experiments (see cmd/tiersim).
type TierClusterTarget = tier.ClusterTarget

// NewTierClusterTarget returns an empty simulated-cluster tier target.
func NewTierClusterTarget(nodes, blocksPerFile int, rng *rand.Rand) *TierClusterTarget {
	return tier.NewClusterTarget(nodes, blocksPerFile, rng)
}

// NewClusterTierManager returns a manager tiering files over a
// simulated cluster target.
func NewClusterTierManager(ct *TierClusterTarget, policy TierPolicy, tracker *HeatTracker) (*TierManager, error) {
	return tier.NewManager(ct, policy, tracker)
}

// TierReplayStats summarizes a trace replay under a tiering policy.
type TierReplayStats = tier.ReplayStats

// ReplayTiering drives a manager from an access trace on a
// discrete-event engine, rebalancing every rebalanceEvery virtual
// seconds. Accesses carry the data block they hit, so extent-granular
// targets heat up per extent.
func ReplayTiering(eng *sim.Engine, trace []WorkloadAccess, m *TierManager,
	rebalanceEvery float64, onAccess func(a WorkloadAccess, now float64) error) (TierReplayStats, error) {
	return tier.Replay(eng, trace, m, rebalanceEvery, onAccess)
}

// NewSimEngine returns a fresh discrete-event engine (virtual clock at
// zero).
func NewSimEngine() *sim.Engine { return sim.NewEngine() }

// WorkloadAccess is one read in a file-access trace.
type WorkloadAccess = workload.Access

// WorkloadTraceConfig describes a synthetic Zipf-skewed access trace.
type WorkloadTraceConfig = workload.TraceConfig

// ZipfTrace generates a deterministic Zipf-skewed access trace.
func ZipfTrace(cfg WorkloadTraceConfig) ([]WorkloadAccess, error) {
	return workload.ZipfTrace(cfg)
}

// TraceFileName returns the canonical name of trace file i.
func TraceFileName(i int) string { return workload.TraceFileName(i) }
