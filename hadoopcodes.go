// Package hadoopcodes is the public facade of this repository: a Go
// implementation and evaluation harness for the erasure codes with
// inherent double replication of Krishnan et al., "Evaluation of Codes
// with Inherent Double Replication for Hadoop" (USENIX HotStorage
// 2014).
//
// The package re-exports the core coding API (pentagon, heptagon,
// heptagon-local, RAID+m and replication codes, with repair and
// degraded-read planning built on partial parities), the reliability
// analysis behind the paper's Table 1, the task-assignment simulators
// behind Figure 3, and the MapReduce cluster simulator behind Figures
// 4 and 5.
//
// Quick start:
//
//	code := hadoopcodes.NewPentagon()
//	symbols, err := code.Encode(dataBlocks) // 9 blocks in, 10 symbols out
//	plan, err := code.PlanRepair([]int{0, 1})
//	fmt.Println(plan.Bandwidth()) // 10 blocks, as in the paper
//
// See the examples directory for runnable end-to-end scenarios and the
// cmd directory for the table/figure regeneration tools.
package hadoopcodes

import (
	"repro/internal/code/heptlocal"
	"repro/internal/code/polygon"
	"repro/internal/code/raidm"
	"repro/internal/code/replication"
	"repro/internal/core"
)

// Code is a coding scheme applied stripe by stripe; see core.Code for
// the full contract.
type Code = core.Code

// RepairPlanner plans node rebuilds with explicit transfers and
// partial parities.
type RepairPlanner = core.RepairPlanner

// ReadPlanner plans (possibly degraded) reads of data symbols.
type ReadPlanner = core.ReadPlanner

// Placement is the replica layout of one stripe.
type Placement = core.Placement

// RepairPlan is the transfer/recovery recipe for rebuilding failed
// nodes.
type RepairPlan = core.RepairPlan

// ReadPlan is the transfer recipe for one block read.
type ReadPlan = core.ReadPlan

// Transfer is one block-sized payload moved between nodes.
type Transfer = core.Transfer

// Term is one coefficient-weighted symbol inside a payload.
type Term = core.Term

// Recovery reconstructs one symbol replica from received payloads.
type Recovery = core.Recovery

// NodeContents is the simulated per-node symbol storage of a stripe.
type NodeContents = core.NodeContents

// ErasureError reports an unrecoverable erasure pattern.
type ErasureError = core.ErasureError

// Striper splits files into code stripes.
type Striper = core.Striper

// EncodedStripe is one encoded stripe of a file.
type EncodedStripe = core.EncodedStripe

// OffCluster is the reader location for clients outside a stripe's
// nodes.
const OffCluster = core.OffCluster

// NewPentagon returns the paper's pentagon code: 9 data blocks + 1 XOR
// parity, each stored twice across 5 nodes (storage overhead 2.22x,
// tolerates any 2 node failures).
func NewPentagon() *polygon.Code { return polygon.New(5) }

// NewHeptagon returns the heptagon code: 20 data blocks + 1 XOR
// parity, each stored twice across 7 nodes (overhead 2.1x).
func NewHeptagon() *polygon.Code { return polygon.New(7) }

// NewPolygon returns the K_n repair-by-transfer code for any n >= 3.
func NewPolygon(n int) *polygon.Code { return polygon.New(n) }

// NewHeptagonLocal returns the heptagon-local code: two heptagon local
// codes plus a global-parity node — 86 blocks on 15 nodes, overhead
// 2.15x, tolerates any 3 node failures.
func NewHeptagonLocal() *heptlocal.Code { return heptlocal.New() }

// NewRAIDM returns the (m+1, m) RAID+mirroring baseline.
func NewRAIDM(m int) *raidm.Code { return raidm.New(m) }

// NewReplication returns plain r-way replication.
func NewReplication(r int) *replication.Code { return replication.New(r) }

// New constructs a registered code by name: "2-rep", "3-rep",
// "pentagon", "heptagon", "heptagon-local", "raid+m-10-9",
// "raid+m-12-11".
func New(name string) (Code, error) { return core.New(name) }

// Names lists the registered code names.
func Names() []string { return core.Names() }

// StorageOverhead returns physical blocks stored per data block.
func StorageOverhead(c Code) float64 { return core.StorageOverhead(c) }

// VerifyPlacement checks a code's layout invariants.
func VerifyPlacement(c Code) error { return core.VerifyPlacement(c) }

// NewStriper returns a file striper for the code and block size.
func NewStriper(c Code, blockSize int) (*Striper, error) {
	return core.NewStriper(c, blockSize)
}

// MaterializeNodes lays encoded symbols onto simulated nodes.
func MaterializeNodes(c Code, symbols [][]byte) NodeContents {
	return core.MaterializeNodes(c, symbols)
}

// ExecuteRepair runs a repair plan against simulated node contents.
func ExecuteRepair(nc NodeContents, plan *RepairPlan, blockSize int) error {
	return core.ExecuteRepair(nc, plan, blockSize)
}

// ExecuteRead runs a read plan and returns the block bytes.
func ExecuteRead(nc NodeContents, plan *ReadPlan, at int, blockSize int) ([]byte, error) {
	return core.ExecuteRead(nc, plan, at, blockSize)
}
