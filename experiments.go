package hadoopcodes

import (
	"math/rand"

	"repro/internal/locality"
	"repro/internal/mapred"
	"repro/internal/reliability"
	"repro/internal/sched"
)

// Reliability / Table 1.

// ReliabilityParams configures the MTTDL model.
type ReliabilityParams = reliability.Params

// ReliabilityRow is one row of Table 1.
type ReliabilityRow = reliability.Row

// DefaultReliabilityParams returns the Table 1 calibration.
func DefaultReliabilityParams() ReliabilityParams { return reliability.DefaultParams() }

// Table1 computes the paper's Table 1 under the given parameters.
func Table1(p ReliabilityParams) ([]ReliabilityRow, error) { return reliability.Table1(p) }

// FormatTable1 renders Table 1 rows.
func FormatTable1(rows []ReliabilityRow) string { return reliability.FormatTable(rows) }

// Locality / Figure 3.

// LocalityConfig configures a Figure 3 locality sweep.
type LocalityConfig = locality.Config

// LocalityPoint is one (code, scheduler, load) locality measurement.
type LocalityPoint = locality.Point

// Scheduler assigns map tasks to nodes; see the sched package for the
// delay, max-match and peeling implementations.
type Scheduler = sched.Scheduler

// DefaultLocalityConfig returns the Figure 3 setting for a given
// map-slot count.
func DefaultLocalityConfig(slots int) LocalityConfig { return locality.DefaultConfig(slots) }

// RunLocality executes a locality sweep.
func RunLocality(cfg LocalityConfig) ([]LocalityPoint, error) { return locality.Run(cfg) }

// DelayScheduler returns Hadoop's delay scheduler with the given round
// budget.
func DelayScheduler(rounds int) Scheduler { return sched.Delay{DelayRounds: rounds} }

// MaxMatchScheduler returns the Hopcroft-Karp maximum-matching
// benchmark scheduler.
func MaxMatchScheduler() Scheduler { return sched.MaxMatch{} }

// PeelingScheduler returns the modified degree-guided peeling
// scheduler.
func PeelingScheduler() Scheduler { return sched.Peeling{} }

// MapReduce / Figures 4 and 5.

// MRExperimentConfig configures a Figure 4/5-style MapReduce sweep.
type MRExperimentConfig = mapred.ExperimentConfig

// MRResultPoint is one averaged experiment cell.
type MRResultPoint = mapred.ResultPoint

// Figure4Config returns the paper's set-up 1 sweep.
func Figure4Config() MRExperimentConfig { return mapred.Figure4Config() }

// Figure5Config returns the paper's set-up 2 sweep.
func Figure5Config() MRExperimentConfig { return mapred.Figure5Config() }

// RunMRExperiment executes a MapReduce sweep.
func RunMRExperiment(cfg MRExperimentConfig) ([]MRResultPoint, error) {
	return mapred.RunExperiment(cfg)
}

// FormatMRResults renders experiment cells as a table.
func FormatMRResults(points []MRResultPoint) string { return mapred.FormatResults(points) }

// Availability and repair-traffic analysis (paper Section 1).

// AvailabilityResult is a stripe-unavailability measurement.
type AvailabilityResult = reliability.AvailabilityResult

// StripeUnavailability computes the probability a stripe of the code
// is momentarily undecodable under independent transient node
// failures. See reliability.StripeUnavailability.
func StripeUnavailability(c Code, p ReliabilityParams, samples int, rng *rand.Rand) (AvailabilityResult, error) {
	return reliability.StripeUnavailability(c, p, samples, rng)
}

// AnnualRepairTraffic estimates yearly repair bytes per stored data
// block for the code under the failure model.
func AnnualRepairTraffic(c Code, p ReliabilityParams, blockBytes float64) (float64, error) {
	return reliability.AnnualRepairTraffic(c, p, blockBytes)
}
