package hadoopcodes

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestFacadeConstructors(t *testing.T) {
	if NewPentagon().Name() != "pentagon" {
		t.Error("NewPentagon wrong")
	}
	if NewHeptagon().Name() != "heptagon" {
		t.Error("NewHeptagon wrong")
	}
	if NewHeptagonLocal().Nodes() != 15 {
		t.Error("NewHeptagonLocal wrong")
	}
	if NewRAIDM(9).Nodes() != 20 {
		t.Error("NewRAIDM wrong")
	}
	if NewReplication(3).Nodes() != 3 {
		t.Error("NewReplication wrong")
	}
	if NewPolygon(6).Nodes() != 6 {
		t.Error("NewPolygon wrong")
	}
}

func TestFacadeRegistry(t *testing.T) {
	names := Names()
	want := []string{"2-rep", "3-rep", "heptagon", "heptagon-local", "pentagon", "raid+m-10-9", "raid+m-12-11"}
	if len(names) < len(want) {
		t.Fatalf("registry names = %v", names)
	}
	for _, w := range want {
		c, err := New(w)
		if err != nil {
			t.Fatalf("New(%q): %v", w, err)
		}
		if err := VerifyPlacement(c); err != nil {
			t.Errorf("%s: %v", w, err)
		}
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	// The doc-comment quick start, verified.
	code := NewPentagon()
	rng := rand.New(rand.NewSource(1))
	data := make([][]byte, code.DataSymbols())
	for i := range data {
		data[i] = make([]byte, 64)
		rng.Read(data[i])
	}
	symbols, err := code.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := code.PlanRepair([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bandwidth() != 10 {
		t.Fatalf("repair bandwidth = %d, want 10", plan.Bandwidth())
	}
	nc := MaterializeNodes(code, symbols)
	nc.Erase(0, 1)
	if err := ExecuteRepair(nc, plan, 64); err != nil {
		t.Fatal(err)
	}
	rp, err := code.PlanRead(0, nil, OffCluster)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExecuteRead(nc, rp, OffCluster, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[0]) {
		t.Fatal("read-back mismatch")
	}
}

func TestFacadeStriper(t *testing.T) {
	st, err := NewStriper(NewPentagon(), 16)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("hadoop"), 100)
	stripes, err := st.EncodeFile(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := st.DecodeFile(stripes, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("striper round trip failed")
	}
}

func TestFacadeExperimentWrappers(t *testing.T) {
	rows, err := Table1(DefaultReliabilityParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 || FormatTable1(rows) == "" {
		t.Fatal("Table1 wrapper broken")
	}

	lcfg := DefaultLocalityConfig(2)
	lcfg.Trials = 2
	lcfg.Loads = []float64{1.0}
	lcfg.Codes = []string{"pentagon"}
	lcfg.Schedulers = []Scheduler{DelayScheduler(1), MaxMatchScheduler(), PeelingScheduler()}
	pts, err := RunLocality(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("locality wrapper returned %d points", len(pts))
	}

	mcfg := Figure4Config()
	mcfg.Trials = 1
	mcfg.Loads = []float64{0.5}
	mcfg.Codes = []string{"2-rep"}
	res, err := RunMRExperiment(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || FormatMRResults(res) == "" {
		t.Fatal("MR wrapper broken")
	}
	if Figure5Config().Cluster.Nodes != 9 {
		t.Fatal("Figure5Config wrong")
	}
	if StorageOverhead(NewPentagon()) < 2.2 {
		t.Fatal("StorageOverhead wrapper broken")
	}
}

func TestFacadeRSAndStore(t *testing.T) {
	c := NewRS(14, 10)
	if c.FaultTolerance() != 4 {
		t.Fatal("NewRS wrong")
	}
	dir := t.TempDir()
	s, err := CreateStore(dir, "pentagon", 4096)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("x"), 10_000)
	if err := s.Put("f", data); err != nil {
		t.Fatal(err)
	}
	if err := s.KillNode(0); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Repair([]int{0}); err != nil {
		t.Fatal(err)
	}
	rep, err := s2.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("store unhealthy after facade repair: %+v", rep)
	}
	got, err := s2.Get("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("facade store round trip failed")
	}
}

func TestFacadeTiering(t *testing.T) {
	s, err := CreateStore(t.TempDir(), "rs-14-10", 4096)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("tier"), 25_000)
	if err := s.Put("f", data); err != nil {
		t.Fatal(err)
	}
	tr := NewHeatTracker(100)
	m, err := NewTierManager(s, TierPolicy{
		HotCode: "pentagon", ColdCode: "rs-14-10", PromoteAt: 3, DemoteAt: 1,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	clock := 0.0
	s.OnRead = func(name string) { m.OnRead(name, clock) }
	for i := 0; i < 4; i++ {
		if _, err := s.Get("f"); err != nil {
			t.Fatal(err)
		}
	}
	moves, err := m.Rebalance(clock)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 || !moves[0].Promote {
		t.Fatalf("facade promotion moves = %+v", moves)
	}
	if code, _ := s.FileCode("f"); code != "pentagon" {
		t.Fatalf("facade code = %q", code)
	}
	got, err := s.Get("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("facade tiering changed bytes")
	}
}

func TestFacadeTieringReplay(t *testing.T) {
	trace, err := ZipfTrace(WorkloadTraceConfig{
		Files: 10, Accesses: 500, ZipfS: 1.5, Rate: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ct := NewTierClusterTarget(30, 20, rand.New(rand.NewSource(1)))
	for i := 0; i < 10; i++ {
		if err := ct.AddFile(TraceFileName(i), "rs-14-10"); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewClusterTierManager(ct, TierPolicy{
		HotCode: "pentagon", ColdCode: "rs-14-10", PromoteAt: 5, DemoteAt: 1,
	}, NewHeatTracker(30))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ReplayTiering(NewSimEngine(), trace, m, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accesses != 500 || stats.Promotions == 0 {
		t.Fatalf("facade replay stats = %+v", stats)
	}
}
